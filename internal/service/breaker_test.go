package service

// Graceful-degradation coverage: the per-model circuit breaker's state
// machine, the bit-identical local fallback behind it, and the startup
// worker probe. The fleet here is always dead-by-construction (refused
// loopback ports), so every coordinator attempt fails fast on dial and
// the degraded path is the one doing the serving.

import (
	"net"
	"reflect"
	"testing"
	"time"

	"locsample"
	"locsample/internal/obs"
)

// deadAddrs returns n loopback addresses that refuse connections.
func deadAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// fastRetry is a coordinator policy that spends milliseconds, not the
// default seconds, discovering that a dead fleet is dead.
func fastRetry() *locsample.RetryPolicy {
	return &locsample.RetryPolicy{
		Attempts:    1,
		Backoff:     10 * time.Millisecond,
		Jitter:      -1,
		DialTimeout: 200 * time.Millisecond,
	}
}

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(2, time.Minute, nil)
	b.now = func() time.Time { return clock }

	if !b.allow() || b.name() != "closed" {
		t.Fatal("new breaker must be closed and allowing")
	}
	b.failure()
	if b.name() != "closed" {
		t.Fatal("one failure under a threshold of two must not open")
	}
	b.failure()
	if b.name() != "open" {
		t.Fatalf("two consecutive failures must open, state %q", b.name())
	}
	if b.allow() {
		t.Fatal("open breaker allowed a draw before cooldown")
	}

	clock = clock.Add(time.Minute)
	if !b.allow() {
		t.Fatal("cooled-down breaker must admit a probe")
	}
	if b.name() != "half-open" {
		t.Fatalf("probe admission must go half-open, state %q", b.name())
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	b.failure()
	if b.name() != "open" {
		t.Fatal("failed probe must re-open")
	}
	if b.allow() {
		t.Fatal("re-opened breaker must start a fresh cooldown")
	}
	clock = clock.Add(time.Minute)
	if !b.allow() {
		t.Fatal("second cooldown must admit another probe")
	}
	b.success()
	if b.name() != "closed" || !b.allow() {
		t.Fatal("successful probe must close the circuit")
	}

	// A success streak also clears partial failure counts.
	b.failure()
	b.success()
	b.failure()
	if b.name() != "closed" {
		t.Fatal("non-consecutive failures must not accumulate")
	}

	// Nil breaker (registry without remote workers) is inert.
	var nb *breaker
	if !nb.allow() || nb.name() != "" {
		t.Fatal("nil breaker must allow everything")
	}
	nb.failure()
	nb.success()
}

// A registry whose entire fleet is unreachable must keep serving: each
// draw fails over to the bit-identical local fallback, the degraded
// counter advances, and after threshold consecutive worker faults the
// breaker opens so later draws skip the coordinator's timeout ladder
// entirely.
func TestDegradedFallbackBitIdentical(t *testing.T) {
	for _, spec := range []struct{ name, json string }{
		{"mrf", coloringSpec},
		{"csp", cspSpec},
	} {
		t.Run(spec.name, func(t *testing.T) {
			central := NewRegistry(Config{})
			mc, _, err := central.Register([]byte(spec.json))
			if err != nil {
				t.Fatal(err)
			}
			want, err := central.Draw(mc, DrawOptions{K: 2, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}

			metrics := obs.NewRegistry()
			remote := NewRegistry(Config{
				WorkerAddrs:      deadAddrs(t, 2),
				DefaultShards:    2,
				Retry:            fastRetry(),
				BreakerThreshold: 2,
				BreakerCooldown:  time.Hour,
				Obs:              metrics,
			})
			mr, _, err := remote.Register([]byte(spec.json))
			if err != nil {
				t.Fatal(err)
			}

			for i := 1; i <= 3; i++ {
				got, err := remote.Draw(mr, DrawOptions{K: 2, Seed: 5})
				if err != nil {
					t.Fatalf("draw %d against a dead fleet did not degrade: %v", i, err)
				}
				if !reflect.DeepEqual(got.Samples, want.Samples) {
					t.Fatalf("degraded draw %d diverges from centralized reference", i)
				}
			}

			st := mr.Stats()
			if st.DegradedDraws != 3 {
				t.Fatalf("degradedDraws = %d, want 3", st.DegradedDraws)
			}
			// Threshold 2 was crossed on the second draw; the third was
			// served with the breaker already open.
			if st.Breaker != "open" {
				t.Fatalf("breaker = %q, want open", st.Breaker)
			}
			if n := metrics.Counter("locserved_degraded_draws_total", "", "model", mr.Hash).Value(); n != 3 {
				t.Fatalf("locserved_degraded_draws_total = %d, want 3", n)
			}
			if s := metrics.Gauge("locserved_breaker_state", "", "model", mr.Hash).Value(); s != breakerOpen {
				t.Fatalf("locserved_breaker_state = %d, want %d", s, breakerOpen)
			}
		})
	}
}

// Draws that never touch the coordinator — centralized, or explicitly
// shards=1 — must not trip the breaker even when the fleet is dead.
func TestCentralizedDrawsBypassBreaker(t *testing.T) {
	remote := NewRegistry(Config{
		WorkerAddrs:      deadAddrs(t, 2),
		Retry:            fastRetry(),
		BreakerThreshold: 1,
	})
	m, _, err := remote.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	// DefaultShards is 0 here, so this draw is centralized and must not
	// count as a coordinator failure (or even try the fleet).
	if _, err := remote.Draw(m, DrawOptions{K: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Draw(m, DrawOptions{K: 1, Seed: 7, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Breaker != "closed" || st.DegradedDraws != 0 {
		t.Fatalf("centralized draws moved the breaker: %+v", st)
	}
}

// ProbeWorkers against a dead fleet: every status comes back down with
// an error, standby addresses are flagged, the locserved_worker_up
// gauges read 0, and the snapshot lands in Stats for /statsz.
func TestProbeWorkersDeadFleet(t *testing.T) {
	metrics := obs.NewRegistry()
	addrs := deadAddrs(t, 2)
	standby := deadAddrs(t, 1)
	reg := NewRegistry(Config{
		WorkerAddrs:  addrs,
		StandbyAddrs: standby,
		Obs:          metrics,
	})
	statuses := reg.ProbeWorkers(200 * time.Millisecond)
	if len(statuses) != 3 {
		t.Fatalf("probed %d workers, want 3", len(statuses))
	}
	for i, st := range statuses {
		if st.Up || st.Error == "" {
			t.Fatalf("worker %d (%s) probed up against a dead fleet: %+v", i, st.Addr, st)
		}
		if wantStandby := i == 2; st.Standby != wantStandby {
			t.Fatalf("worker %d standby = %v, want %v", i, st.Standby, wantStandby)
		}
		if v := metrics.Gauge("locserved_worker_up", "", "addr", st.Addr).Value(); v != 0 {
			t.Fatalf("locserved_worker_up{%s} = %d, want 0", st.Addr, v)
		}
	}
	if got := reg.Stats().Workers; !reflect.DeepEqual(got, statuses) {
		t.Fatal("Stats().Workers does not carry the probe snapshot")
	}
	if reg2 := NewRegistry(Config{}); reg2.ProbeWorkers(0) != nil {
		t.Fatal("workerless registry must probe to nil")
	}
}
