package spec

import (
	"bytes"
	"testing"
)

// FuzzSpecRoundTrip checks the codec's canonical-form contract on
// arbitrary inputs: whenever Decode accepts bytes, the decoded spec must
// re-encode, the re-encoding must decode, and a second round trip must be
// byte-identical to the first (decode→encode is a fixpoint) with an
// unchanged content hash. Invalid inputs must be rejected by returning an
// error — never by panicking.
func FuzzSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{"version":"locsample/v1","graph":{"family":"grid","rows":4,"cols":4},
			"model":{"kind":"coloring","q":7}}`,
		`{"version":"locsample/v1","name":"hc","graph":{"family":"cycle","n":8},
			"model":{"kind":"hardcore","lambda":0.721}}`,
		`{"version":"locsample/v1","graph":{"n":3,"edges":[[0,1],[1,2],[0,1]]},
			"model":{"kind":"ising","beta":1.5,"field":0.25}}`,
		`{"version":"locsample/v1","graph":{"family":"gnp","n":9,"p":0.35,"seed":184467440737095516},
			"model":{"kind":"potts","q":3,"beta":0.1}}`,
		`{"version":"locsample/v1","graph":{"n":2,"edges":[[0,1]]},
			"model":{"kind":"mrf","q":2,"edgeActivities":[[1,1,1,0]],
				"vertexActivities":[[1,0.30000000000000004]]}}`,
		`{"version":"locsample/v1","graph":{"family":"star","n":5},
			"model":{"kind":"csp","q":2,"rounds":20,"init":[1,0,0,0,0],
				"constraints":[{"kind":"cover","scope":[0,1,2]},
					{"kind":"table","scope":[3,4],"table":[0,1,1,0]}]}}`,
		`{"version":"locsample/v1","graph":{"family":"tree","arity":3,"depth":2},
			"model":{"kind":"listcoloring","q":3,"lists":[[0],[1],[2],[0,1],[1,2],[0,2],[0,1,2],[0],[1],[2],[0,1],[1,2],[0,2]]}}`,
		// Near-misses that must keep erroring cleanly.
		`{"version":"locsample/v0","graph":{"family":"path","n":3},"model":{"kind":"coloring","q":4}}`,
		`{"version":"locsample/v1","graph":{"n":3,"edges":[[1,1]]},"model":{"kind":"coloring","q":4}}`,
		`{"version":"locsample/v1","graph":{"family":"path","n":3},"model":{"kind":"csp","q":2}}`,
		`{}`,
		`[]`,
		`{"version":"locsample/v1"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		enc1, err := Encode(s)
		if err != nil {
			t.Fatalf("decoded spec does not re-encode: %v", err)
		}
		s2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v\n%s", err, enc1)
		}
		enc2, err := Encode(s2)
		if err != nil {
			t.Fatalf("round-tripped spec does not re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode is not a fixpoint:\n%s\n%s", enc1, enc2)
		}
		h1, err := Hash(s)
		if err != nil {
			t.Fatalf("hash: %v", err)
		}
		h2, err := Hash(s2)
		if err != nil {
			t.Fatalf("hash after round trip: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("hash changed across round trip: %s vs %s", h1, h2)
		}
	})
}
