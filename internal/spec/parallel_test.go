package spec

import (
	"strings"
	"testing"
)

// TestSpecParallelField: the parallel serving default is accepted on MRF
// kinds, round-trips through the canonical encoding, flows into Build, and
// is rejected where it cannot mean anything.
func TestSpecParallelField(t *testing.T) {
	good := `{
		"version": "locsample/v1",
		"graph": {"family": "grid", "rows": 4, "cols": 4},
		"model": {"kind": "coloring", "q": 8, "parallel": 4}
	}`
	s, err := Decode([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Model.Parallel != 4 {
		t.Fatalf("decoded parallel = %d", s.Model.Parallel)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Parallel != 4 {
		t.Fatalf("built parallel = %d", b.Parallel)
	}
	enc, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"parallel":4`) {
		t.Fatalf("canonical encoding lost parallel: %s", enc)
	}
	// The field participates in the hash when present, and its absence
	// leaves pre-existing hashes untouched.
	plain := strings.Replace(good, `, "parallel": 4`, "", 1)
	sp, err := Decode([]byte(plain))
	if err != nil {
		t.Fatal(err)
	}
	hp, _ := Hash(sp)
	hs, _ := Hash(s)
	if hp == hs {
		t.Fatal("parallel field does not participate in the content hash")
	}

	// Since PR 5 the field is legal on kind csp too.
	cspParallel := `{
		"version": "locsample/v1",
		"graph": {"family": "cycle", "n": 4},
		"model": {"kind": "csp", "q": 2, "parallel": 2, "constraints": [
			{"kind": "cover", "scope": [0, 1]}
		]}
	}`
	cs, err := Decode([]byte(cspParallel))
	if err != nil {
		t.Fatalf("csp parallel field rejected: %v", err)
	}
	cb, err := Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Parallel != 2 {
		t.Fatalf("built csp parallel = %d, want 2", cb.Parallel)
	}

	for name, bad := range map[string]string{
		"negative": `{
			"version": "locsample/v1",
			"graph": {"family": "grid", "rows": 4, "cols": 4},
			"model": {"kind": "coloring", "q": 8, "parallel": -1}
		}`,
		"over-limit": `{
			"version": "locsample/v1",
			"graph": {"family": "grid", "rows": 2000, "cols": 2},
			"model": {"kind": "coloring", "q": 8, "parallel": 2000}
		}`,
		"with-shards": `{
			"version": "locsample/v1",
			"graph": {"family": "grid", "rows": 4, "cols": 4},
			"model": {"kind": "coloring", "q": 8, "shards": 2, "parallel": 2}
		}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Fatalf("%s: invalid parallel accepted", name)
		}
	}
}
