package spec

import (
	"bytes"
	"strings"
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func validColoringJSON() []byte {
	return []byte(`{
		"version": "locsample/v1",
		"graph": {"family": "grid", "rows": 4, "cols": 4},
		"model": {"kind": "coloring", "q": 7}
	}`)
}

func TestDecodeValidKinds(t *testing.T) {
	cases := map[string]string{
		"coloring": `{"version":"locsample/v1","graph":{"family":"cycle","n":6},
			"model":{"kind":"coloring","q":5}}`,
		"listcoloring": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"listcoloring","q":3,"lists":[[0,1],[1,2],[0,2]]}}`,
		"hardcore": `{"version":"locsample/v1","graph":{"family":"star","n":5},
			"model":{"kind":"hardcore","lambda":0.5}}`,
		"independentset": `{"version":"locsample/v1","graph":{"family":"hypercube","dim":3},
			"model":{"kind":"independentset"}}`,
		"vertexcover": `{"version":"locsample/v1","graph":{"family":"complete","n":4},
			"model":{"kind":"vertexcover"}}`,
		"ising": `{"version":"locsample/v1","graph":{"family":"torus","rows":3,"cols":3},
			"model":{"kind":"ising","beta":1.4,"field":1}}`,
		"potts": `{"version":"locsample/v1","graph":{"family":"tree","arity":2,"depth":3},
			"model":{"kind":"potts","q":3,"beta":0.5}}`,
		"mrf": `{"version":"locsample/v1","graph":{"n":2,"edges":[[0,1]]},
			"model":{"kind":"mrf","q":2,
				"edgeActivities":[[1,1,1,0]],
				"vertexActivities":[[1,1]]}}`,
		"csp": `{"version":"locsample/v1","graph":{"family":"cycle","n":5},
			"model":{"kind":"csp","q":2,"rounds":50,
				"constraints":[{"kind":"cover","scope":[0,1,2]},{"kind":"cover","scope":[3,4]}]}}`,
		"regular": `{"version":"locsample/v1","graph":{"family":"regular","n":10,"degree":3,"seed":7},
			"model":{"kind":"coloring","q":12}}`,
		"gnp": `{"version":"locsample/v1","graph":{"family":"gnp","n":10,"p":0.3,"seed":7},
			"model":{"kind":"coloring","q":31}}`,
	}
	for name, js := range cases {
		s, err := Decode([]byte(js))
		if err != nil {
			t.Errorf("%s: decode failed: %v", name, err)
			continue
		}
		if _, err := Build(s); err != nil {
			t.Errorf("%s: build failed: %v", name, err)
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := map[string]string{
		"wrong version": `{"version":"locsample/v0","graph":{"family":"path","n":3},
			"model":{"kind":"coloring","q":4}}`,
		"missing version": `{"graph":{"family":"path","n":3},"model":{"kind":"coloring","q":4}}`,
		"unknown field": `{"version":"locsample/v1","bogus":1,"graph":{"family":"path","n":3},
			"model":{"kind":"coloring","q":4}}`,
		"unknown graph field": `{"version":"locsample/v1","graph":{"family":"path","n":3,"frob":2},
			"model":{"kind":"coloring","q":4}}`,
		"trailing data": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"coloring","q":4}} {"extra":true}`,
		"trailing garbage": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"coloring","q":4}} ,garbage!!`,
		"not json":       `hello`,
		"unknown family": `{"version":"locsample/v1","graph":{"family":"moebius","n":3},"model":{"kind":"coloring","q":4}}`,
		"no family or edges": `{"version":"locsample/v1","graph":{"n":3},
			"model":{"kind":"coloring","q":4}}`,
		"self loop": `{"version":"locsample/v1","graph":{"n":3,"edges":[[1,1]]},
			"model":{"kind":"coloring","q":4}}`,
		"edge out of range": `{"version":"locsample/v1","graph":{"n":3,"edges":[[0,3]]},
			"model":{"kind":"coloring","q":4}}`,
		"cycle too small": `{"version":"locsample/v1","graph":{"family":"cycle","n":2},
			"model":{"kind":"coloring","q":4}}`,
		"gnp p out of range": `{"version":"locsample/v1","graph":{"family":"gnp","n":5,"p":1.5},
			"model":{"kind":"coloring","q":4}}`,
		"regular odd nd": `{"version":"locsample/v1","graph":{"family":"regular","n":5,"degree":3},
			"model":{"kind":"coloring","q":10}}`,
		"stray graph field (seed on grid)": `{"version":"locsample/v1",
			"graph":{"family":"grid","rows":3,"cols":3,"seed":99},
			"model":{"kind":"coloring","q":4}}`,
		"stray graph field (n on grid)": `{"version":"locsample/v1",
			"graph":{"family":"grid","rows":3,"cols":3,"n":9},
			"model":{"kind":"coloring","q":4}}`,
		"stray graph field (edges on family)": `{"version":"locsample/v1",
			"graph":{"family":"path","n":3,"edges":[[0,1]]},
			"model":{"kind":"coloring","q":4}}`,
		"unknown kind": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"qcd"}}`,
		"missing q": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"coloring"}}`,
		"q too large": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"coloring","q":99999}}`,
		"negative lambda": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"hardcore","lambda":-1}}`,
		"stray field for kind": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"coloring","q":4,"lambda":2}}`,
		"stray rounds on mrf kind": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"ising","beta":1,"rounds":10}}`,
		"mrf bad edge table size": `{"version":"locsample/v1","graph":{"n":2,"edges":[[0,1]]},
			"model":{"kind":"mrf","q":2,"edgeActivities":[[1,1,1]],"vertexActivities":[[1,1]]}}`,
		"mrf per-edge on random graph": `{"version":"locsample/v1","graph":{"family":"gnp","n":4,"p":0.5},
			"model":{"kind":"mrf","q":2,
				"edgeActivities":[[1,1,1,0],[1,1,1,0]],"vertexActivities":[[1,1]]}}`,
		"mrf zero-mass vertex": `{"version":"locsample/v1","graph":{"n":2,"edges":[[0,1]]},
			"model":{"kind":"mrf","q":2,"edgeActivities":[[1,1,1,0]],"vertexActivities":[[0,0]]}}`,
		"csp no constraints": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"csp","q":2,"rounds":10}}`,
		"csp bad table size": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"csp","q":2,"rounds":10,
				"constraints":[{"kind":"table","scope":[0,1],"table":[1,0,1]}]}}`,
		"csp cover needs q2": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"csp","q":3,"rounds":10,
				"constraints":[{"kind":"cover","scope":[0,1]}]}}`,
		"csp duplicate scope": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"csp","q":2,"rounds":10,
				"constraints":[{"kind":"cover","scope":[0,0]}]}}`,
		"csp arity over limit": `{"version":"locsample/v1","graph":{"family":"path","n":12},
			"model":{"kind":"csp","q":2,"rounds":10,
				"constraints":[{"kind":"cover","scope":[0,1,2,3,4,5,6,7,8]}]}}`,
		"csp table q^arity overflow": `{"version":"locsample/v1","graph":{"family":"path","n":12},
			"model":{"kind":"csp","q":1024,"rounds":10,
				"constraints":[{"kind":"table","scope":[0,1,2,3,4,5,6,7]}]}}`,
		"csp init out of range": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"csp","q":2,"rounds":10,"init":[0,2,0],
				"constraints":[{"kind":"cover","scope":[0,1]}]}}`,
		"csp constraint unknown kind": `{"version":"locsample/v1","graph":{"family":"path","n":3},
			"model":{"kind":"csp","q":2,"rounds":10,
				"constraints":[{"kind":"xor","scope":[0,1]}]}}`,
	}
	for name, js := range cases {
		if _, err := Decode([]byte(js)); err == nil {
			t.Errorf("%s: decode unexpectedly succeeded", name)
		}
	}
}

func TestDecodeOversized(t *testing.T) {
	big := append(validColoringJSON(), bytes.Repeat([]byte(" "), MaxSpecBytes)...)
	if _, err := Decode(big); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized spec not rejected: %v", err)
	}
}

func TestBuildRejectsAsymmetricActivity(t *testing.T) {
	js := `{"version":"locsample/v1","graph":{"n":2,"edges":[[0,1]]},
		"model":{"kind":"mrf","q":2,"edgeActivities":[[1,0.5,0.25,0]],"vertexActivities":[[1,1]]}}`
	s, err := Decode([]byte(js))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, err := Build(s); err == nil || !strings.Contains(err.Error(), "symmetric") {
		t.Fatalf("asymmetric edge activity not rejected: %v", err)
	}
}

func TestEncodeDecodeFixpoint(t *testing.T) {
	s, err := Decode(validColoringJSON())
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(enc1)
	if err != nil {
		t.Fatalf("canonical encoding does not decode: %v", err)
	}
	enc2, err := Encode(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode not a fixpoint:\n%s\n%s", enc1, enc2)
	}
}

func TestHashStableAndDiscriminating(t *testing.T) {
	s1, _ := Decode(validColoringJSON())
	s2, _ := Decode(validColoringJSON())
	h1, err := Hash(s1)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := Hash(s2)
	if h1 != h2 {
		t.Fatalf("identical specs hash differently: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", h1)
	}
	// Whitespace and key order must not matter: the hash is over the
	// canonical re-encoding, not the client's bytes.
	reordered := `{"model":{"q":7,"kind":"coloring"},
		"graph":{"cols":4,"rows":4,"family":"grid"},"version":"locsample/v1"}`
	s3, err := Decode([]byte(reordered))
	if err != nil {
		t.Fatal(err)
	}
	if h3, _ := Hash(s3); h3 != h1 {
		t.Fatalf("reordered spec hashes differently: %s vs %s", h3, h1)
	}
	// Any semantic change must change the hash.
	s4, _ := Decode(validColoringJSON())
	s4.Model.Q = 8
	if h4, _ := Hash(s4); h4 == h1 {
		t.Fatal("different specs hash equal")
	}
}

// TestHashCanonicalAcrossSpellings: every accepted spelling of a workload
// hashes identically — the implicit and explicit "edges" family name the
// same graph, and inert fields are rejected rather than silently hashed.
func TestHashCanonicalAcrossSpellings(t *testing.T) {
	implicit := `{"version":"locsample/v1","graph":{"n":2,"edges":[[0,1]]},
		"model":{"kind":"ising","beta":1.2}}`
	explicit := `{"version":"locsample/v1","graph":{"family":"edges","n":2,"edges":[[0,1]]},
		"model":{"kind":"ising","beta":1.2}}`
	s1, err := Decode([]byte(implicit))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode([]byte(explicit))
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := Hash(s1)
	h2, _ := Hash(s2)
	if h1 != h2 {
		t.Fatalf("equivalent edge-list spellings hash differently:\n%s\n%s", h1, h2)
	}
}

// TestEncodeDoesNotMutate: Encode/Hash canonicalize into a copy, never the
// caller's spec.
func TestEncodeDoesNotMutate(t *testing.T) {
	s := &Spec{
		Version: Version,
		Graph:   GraphSpec{N: 2, Edges: [][2]int{{0, 1}}},
		Model:   ModelSpec{Kind: "ising", Beta: 1.2},
	}
	if _, err := Hash(s); err != nil {
		t.Fatal(err)
	}
	if s.Graph.Family != "" {
		t.Fatalf("Hash mutated the input spec: family = %q", s.Graph.Family)
	}
}

// TestGridEdgeCountExact: the validator's edge count for deterministic
// families matches the built graph exactly, so per-edge mrf activity lists
// of the true length are accepted.
func TestGridEdgeCountExact(t *testing.T) {
	// A 2x2 grid has 4 edges (2·2·2 − 2 − 2), not the 2rc estimate.
	js := `{"version":"locsample/v1","graph":{"family":"grid","rows":2,"cols":2},
		"model":{"kind":"mrf","q":2,
			"edgeActivities":[[1,1,1,0],[1,1,1,0],[1,1,1,0],[1,1,1,0]],
			"vertexActivities":[[1,1]]}}`
	s, err := Decode([]byte(js))
	if err != nil {
		t.Fatalf("exact per-edge list rejected: %v", err)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Graph.M(); got != 4 {
		t.Fatalf("2x2 grid built %d edges", got)
	}
	if len(b.MRF.EdgeA) != 4 {
		t.Fatalf("model has %d edge activities", len(b.MRF.EdgeA))
	}
}

func TestFromMRFRoundTrip(t *testing.T) {
	g := graph.Grid(3, 3)
	orig := mrf.Potts(g, 3, 0.7)
	s := FromMRF(orig, "potts-export")
	if err := s.Validate(); err != nil {
		t.Fatalf("exported spec invalid: %v", err)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatalf("exported spec does not build: %v", err)
	}
	if b.MRF == nil {
		t.Fatal("exported spec built no MRF")
	}
	if b.MRF.Q != orig.Q || b.MRF.G.N() != orig.G.N() || b.MRF.G.M() != orig.G.M() {
		t.Fatal("exported spec changed the model shape")
	}
	// Same Gibbs distribution: equal weights on a sweep of configurations.
	sigma := make([]int, g.N())
	for trial := 0; trial < 50; trial++ {
		for v := range sigma {
			sigma[v] = (trial*7 + v*3) % orig.Q
		}
		if got, want := b.MRF.Weight(sigma), orig.Weight(sigma); got != want {
			t.Fatalf("weight mismatch at trial %d: %v vs %v", trial, got, want)
		}
	}
}

func TestCSPDefaultInit(t *testing.T) {
	// Cover constraints: all-zeros is infeasible, all-ones feasible — the
	// uniform scan must find spin 1.
	js := `{"version":"locsample/v1","graph":{"family":"cycle","n":4},
		"model":{"kind":"csp","q":2,"rounds":10,
			"constraints":[{"kind":"cover","scope":[0,1]},{"kind":"cover","scope":[2,3]}]}}`
	s, err := Decode([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CSP.Feasible(b.Init) {
		t.Fatal("derived init infeasible")
	}
	// An explicitly infeasible init must be rejected at build time.
	bad := `{"version":"locsample/v1","graph":{"family":"cycle","n":4},
		"model":{"kind":"csp","q":2,"rounds":10,"init":[0,0,0,0],
			"constraints":[{"kind":"cover","scope":[0,1]},{"kind":"cover","scope":[2,3]}]}}`
	s, err = Decode([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(s); err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("infeasible init not rejected: %v", err)
	}
}

func TestTableConstraintSemantics(t *testing.T) {
	// A binary table implementing "not equal" on q=2 (scope[0] varies
	// fastest): index = v0 + 2*v1, so table [0,1,1,0].
	js := `{"version":"locsample/v1","graph":{"family":"path","n":2},
		"model":{"kind":"csp","q":2,"rounds":5,"init":[0,1],
			"constraints":[{"kind":"table","scope":[0,1],"table":[0,1,1,0]}]}}`
	s, err := Decode([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		sigma []int
		want  bool
	}{
		{[]int{0, 0}, false}, {[]int{1, 1}, false},
		{[]int{0, 1}, true}, {[]int{1, 0}, true},
	} {
		if got := b.CSP.Feasible(tc.sigma); got != tc.want {
			t.Errorf("Feasible(%v) = %v, want %v", tc.sigma, got, tc.want)
		}
	}
}
