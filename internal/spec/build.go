package spec

import (
	"fmt"

	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// Built is the live workload a spec describes: the graph plus exactly one
// of an MRF or a CSP.
type Built struct {
	// Spec is the validated spec this was built from.
	Spec *Spec
	// Hash is the spec's canonical content address.
	Hash string
	// Graph is the network.
	Graph *graph.Graph
	// MRF is the model for every kind except "csp"; nil otherwise.
	MRF *mrf.MRF
	// CSP is the model for kind "csp"; nil otherwise.
	CSP *csp.CSP
	// Init is the resolved feasible starting configuration for CSP
	// workloads (the spec's init, or a derived uniform one); nil for MRFs,
	// whose init is resolved by core.Compile.
	Init []int
	// Rounds is the CSP default chain-iteration budget (0 when the spec
	// left it to the request); 0 for MRFs.
	Rounds int
	// Shards is the default shard count for served draws (0 when the spec
	// left it to the request).
	Shards int
	// Parallel is the default vertex-parallel worker count for served
	// draws (0 when the spec left it to the request).
	Parallel int
}

// Build validates s, constructs its graph and model, and — for CSPs —
// resolves a feasible initial configuration. The same spec always builds
// the same workload (random graph families are seeded).
func Build(s *Spec) (*Built, error) {
	h, err := Hash(s) // validates
	if err != nil {
		return nil, err
	}
	g, err := buildGraph(&s.Graph)
	if err != nil {
		return nil, err
	}
	b := &Built{Spec: s, Hash: h, Graph: g}
	ms := &s.Model
	switch ms.Kind {
	case "coloring":
		b.MRF = mrf.Coloring(g, ms.Q)
	case "listcoloring":
		b.MRF, err = mrf.ListColoring(g, ms.Q, ms.Lists)
	case "hardcore":
		b.MRF = mrf.Hardcore(g, ms.Lambda)
	case "independentset":
		b.MRF = mrf.UniformIndependentSet(g)
	case "vertexcover":
		b.MRF = mrf.VertexCover(g)
	case "ising":
		b.MRF = mrf.Ising(g, ms.Beta, ms.Field)
	case "potts":
		b.MRF = mrf.Potts(g, ms.Q, ms.Beta)
	case "mrf":
		b.MRF, err = buildMRF(g, ms)
	case "csp":
		b.CSP, b.Init, err = buildCSP(g, ms)
		b.Rounds = ms.Rounds
	default:
		err = fmt.Errorf("spec: unknown model kind %q", ms.Kind)
	}
	if err != nil {
		return nil, err
	}
	b.Shards = ms.Shards
	b.Parallel = ms.Parallel
	return b, nil
}

func buildGraph(gs *GraphSpec) (*graph.Graph, error) {
	fam := gs.Family
	if fam == "" && len(gs.Edges) > 0 {
		fam = "edges"
	}
	switch fam {
	case "edges":
		b := graph.NewBuilder(gs.N)
		for _, e := range gs.Edges {
			b.AddEdge(e[0], e[1])
		}
		return b.Build(), nil
	case "path":
		return graph.Path(gs.N), nil
	case "cycle":
		return graph.Cycle(gs.N), nil
	case "grid":
		return graph.Grid(gs.Rows, gs.Cols), nil
	case "torus":
		return graph.Torus(gs.Rows, gs.Cols), nil
	case "complete":
		return graph.Complete(gs.N), nil
	case "star":
		return graph.Star(gs.N), nil
	case "bipartite":
		return graph.CompleteBipartite(gs.A, gs.B), nil
	case "tree":
		return graph.CompleteTree(gs.Arity, gs.Depth), nil
	case "hypercube":
		return graph.Hypercube(gs.Dim), nil
	case "regular":
		return graph.RandomRegular(gs.N, gs.Degree, rng.New(gs.Seed))
	case "gnp":
		return graph.Gnp(gs.N, gs.P, rng.New(gs.Seed)), nil
	default:
		return nil, fmt.Errorf("spec: unknown graph family %q", fam)
	}
}

func buildMRF(g *graph.Graph, ms *ModelSpec) (*mrf.MRF, error) {
	q := ms.Q
	edgeA := make([]*mrf.Mat, g.M())
	if len(ms.EdgeActivities) == 1 {
		a := matFromRow(q, ms.EdgeActivities[0])
		for i := range edgeA {
			edgeA[i] = a
		}
	} else {
		for i := range edgeA {
			edgeA[i] = matFromRow(q, ms.EdgeActivities[i])
		}
	}
	vertexB := expandVertexActivities(ms.VertexActivities, g.N())
	return mrf.New(g, q, edgeA, vertexB)
}

func matFromRow(q int, row []float64) *mrf.Mat {
	a := mrf.NewMat(q)
	copy(a.A, row)
	return a
}

// expandVertexActivities turns a 1-(shared) or n-entry activity list into
// n rows. Shared rows may alias: MRF/CSP construction treats them as
// read-only.
func expandVertexActivities(bs [][]float64, n int) [][]float64 {
	out := make([][]float64, n)
	if len(bs) == 1 {
		for i := range out {
			out[i] = bs[0]
		}
		return out
	}
	copy(out, bs)
	return out
}

func buildCSP(g *graph.Graph, ms *ModelSpec) (*csp.CSP, []int, error) {
	q := ms.Q
	n := g.N()
	var vertexB [][]float64
	if len(ms.VertexActivities) == 0 {
		ones := make([]float64, q)
		for i := range ones {
			ones[i] = 1
		}
		vertexB = expandVertexActivities([][]float64{ones}, n)
	} else {
		vertexB = expandVertexActivities(ms.VertexActivities, n)
	}
	cons := make([]csp.Constraint, len(ms.Constraints))
	for i := range ms.Constraints {
		cs := &ms.Constraints[i]
		scope := make([]int32, len(cs.Scope))
		for j, v := range cs.Scope {
			scope[j] = int32(v)
		}
		var f func([]int) float64
		switch cs.Kind {
		case "table":
			f = tableFactor(q, cs.Table)
		case "cover":
			f = coverFactor
		case "notallequal":
			f = notAllEqualFactor
		default:
			return nil, nil, fmt.Errorf("spec: constraint %d has unknown kind %q", i, cs.Kind)
		}
		cons[i] = csp.Constraint{Scope: scope, F: f}
	}
	c, err := csp.New(n, q, vertexB, cons)
	if err != nil {
		return nil, nil, err
	}
	init, err := resolveInit(c, ms)
	if err != nil {
		return nil, nil, err
	}
	return c, init, nil
}

// tableFactor indexes the flat q^arity table with scope position 0 varying
// fastest — the same digit order as the domain enumerations elsewhere in
// the repository.
func tableFactor(q int, table []float64) func([]int) float64 {
	return func(vals []int) float64 {
		idx := 0
		stride := 1
		for _, v := range vals {
			idx += v * stride
			stride *= q
		}
		return table[idx]
	}
}

func coverFactor(vals []int) float64 {
	for _, x := range vals {
		if x == 1 {
			return 1
		}
	}
	return 0
}

func notAllEqualFactor(vals []int) float64 {
	for _, x := range vals[1:] {
		if x != vals[0] {
			return 1
		}
	}
	return 0
}

// resolveInit returns the spec's explicit init (checked feasible), or
// derives a deterministic feasible one: the first feasible uniform
// configuration, then the v mod q striping. Chains need a feasible start;
// unlike MRFs there is no general greedy construction for CSPs, so specs
// whose feasible region excludes these candidates must pin init
// explicitly.
func resolveInit(c *csp.CSP, ms *ModelSpec) ([]int, error) {
	if len(ms.Init) != 0 {
		init := append([]int(nil), ms.Init...)
		if !c.Feasible(init) {
			return nil, fmt.Errorf("spec: csp init is infeasible (zero weight)")
		}
		return init, nil
	}
	init := make([]int, c.N)
	for a := 0; a < c.Q; a++ {
		for v := range init {
			init[v] = a
		}
		if c.Feasible(init) {
			return init, nil
		}
	}
	for v := range init {
		init[v] = v % c.Q
	}
	if c.Feasible(init) {
		return init, nil
	}
	return nil, fmt.Errorf("spec: no default feasible init found; supply model.init")
}

// FromMRF exports an in-memory MRF back to the wire format: an explicit
// edge list and per-edge/per-vertex activity tables of kind "mrf". The
// result round-trips: Build(FromMRF(m)) defines the same Gibbs
// distribution as m.
func FromMRF(m *mrf.MRF, name string) *Spec {
	g := m.G
	edges := make([][2]int, g.M())
	for id, e := range g.Edges() {
		edges[id] = [2]int{int(e.U), int(e.V)}
	}
	edgeA := make([][]float64, g.M())
	for id, a := range m.EdgeA {
		edgeA[id] = append([]float64(nil), a.A...)
	}
	vertexB := make([][]float64, g.N())
	for v, b := range m.VertexB {
		vertexB[v] = append([]float64(nil), b...)
	}
	return &Spec{
		Version: Version,
		Name:    name,
		Graph:   GraphSpec{Family: "edges", N: g.N(), Edges: edges},
		Model: ModelSpec{
			Kind:             "mrf",
			Q:                m.Q,
			EdgeActivities:   edgeA,
			VertexActivities: vertexB,
		},
	}
}

// FromCSP exports an in-memory CSP back to the wire format: kind "csp"
// with every constraint as an explicit "table" factor read off the
// compiled tables (scope position 0 varying fastest — the wire codec's
// digit order). The result round-trips bit-exactly: Build re-enumerates
// the tables to the same float64 values, so a worker rebuilding the CSP
// from this spec runs the identical chain. g supplies the network edge
// list (nil means no network — an empty edge list); init must be a
// feasible start and is pinned in the spec, rounds its default budget.
// Constraints whose arity exceeds the wire limit, or whose factors were
// too large to compile to tables, cannot be exported.
func FromCSP(c *csp.CSP, g *graph.Graph, init []int, rounds int, name string) (*Spec, error) {
	gs := GraphSpec{Family: "edges", N: c.N}
	if g != nil {
		if g.N() != c.N {
			return nil, fmt.Errorf("spec: CSP has %d vertices, network %d", c.N, g.N())
		}
		gs.Edges = make([][2]int, g.M())
		for id, e := range g.Edges() {
			gs.Edges[id] = [2]int{int(e.U), int(e.V)}
		}
	} else {
		gs.Edges = [][2]int{}
	}
	cons := make([]ConstraintSpec, len(c.Cons))
	for i := range c.Cons {
		scope := c.Cons[i].Scope
		if len(scope) > MaxArity {
			return nil, fmt.Errorf("spec: constraint %d arity %d exceeds the wire limit %d", i, len(scope), MaxArity)
		}
		tab := c.TableOf(i)
		if tab == nil {
			return nil, fmt.Errorf("spec: constraint %d has no compiled table to export", i)
		}
		cs := ConstraintSpec{Kind: "table", Scope: make([]int, len(scope)), Table: append([]float64(nil), tab...)}
		for j, v := range scope {
			cs.Scope[j] = int(v)
		}
		cons[i] = cs
	}
	vertexB := make([][]float64, c.N)
	for v, b := range c.VertexB {
		vertexB[v] = append([]float64(nil), b...)
	}
	s := &Spec{
		Version: Version,
		Name:    name,
		Graph:   gs,
		Model: ModelSpec{
			Kind:             "csp",
			Q:                c.Q,
			VertexActivities: vertexB,
			Constraints:      cons,
			Init:             append([]int(nil), init...),
			Rounds:           rounds,
		},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
