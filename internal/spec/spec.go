// Package spec is the wire format of the serving subsystem: a versioned
// JSON codec for graphs and every public model family, with strict
// validation and a canonical content hash.
//
// A Spec fully describes a sampling workload — the network, the Gibbs
// distribution on it, and (for CSPs, which have no theory round budget)
// optional serving defaults — in plain data: no Go code, no closures. It is
// the contract between clients and cmd/lserved, between spec files and
// cmd/lsample's -model-file flag, and between registry entries and the
// compiled-sampler cache, which is keyed by the canonical hash.
//
// Canonical form. Encode always emits the same bytes for the same decoded
// value: struct fields in fixed declaration order, omitempty zero elision,
// and Go's shortest-round-trip float formatting. Decode(Encode(s)) is the
// identity on valid specs and Encode(Decode(b)) is a fixpoint after one
// round trip (property-tested by FuzzSpecRoundTrip), so
//
//	Hash(s) = "sha256:" + hex(SHA-256(Encode(s)))
//
// is a well-defined content address: two specs hash equal iff they decode
// to the same workload.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the wire-format version every spec must declare.
const Version = "locsample/v1"

// Validation limits. They bound what a remote client can make the server
// build: decode rejects anything larger before any graph or table is
// allocated.
const (
	// MaxSpecBytes bounds the encoded spec size Decode accepts.
	MaxSpecBytes = 8 << 20
	// MaxVertices bounds graph order (explicit or generated).
	MaxVertices = 1 << 20
	// MaxEdges bounds graph size (explicit or generated).
	MaxEdges = 1 << 22
	// MaxQ bounds the spin domain.
	MaxQ = 1 << 10
	// MaxConstraints bounds the constraint count of a CSP spec.
	MaxConstraints = 1 << 20
	// MaxArity bounds CSP constraint scope size (tables are q^arity).
	MaxArity = 8
	// MaxShards bounds the per-model default shard count.
	MaxShards = 1 << 10
	// MaxParallel bounds the per-model default vertex-parallel worker count.
	MaxParallel = 1 << 10
	// MaxTableEntries bounds the total constraint-table entries of a spec.
	MaxTableEntries = 1 << 22
)

// Spec is the top-level wire object: a graph plus a model on it.
type Spec struct {
	// Version must equal Version ("locsample/v1").
	Version string `json:"version"`
	// Name is an optional human label; it participates in the hash.
	Name string `json:"name,omitempty"`
	// Graph describes the network.
	Graph GraphSpec `json:"graph"`
	// Model describes the Gibbs distribution on the graph.
	Model ModelSpec `json:"model"`
}

// GraphSpec describes a graph either as an explicit edge list or as one of
// the generator families of internal/graph. Generated families with
// randomness (gnp, regular) are seeded, so a spec still names one concrete
// graph.
type GraphSpec struct {
	// Family selects a generator: path|cycle|grid|torus|complete|star|
	// bipartite|tree|hypercube|regular|gnp, or "edges" (the default when
	// empty and Edges is set) for an explicit edge list.
	Family string `json:"family,omitempty"`
	// N is the vertex count (path, cycle, complete, star, regular, gnp;
	// required for explicit edge lists).
	N int `json:"n,omitempty"`
	// Rows and Cols size grid and torus graphs.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dim is the hypercube dimension.
	Dim int `json:"dim,omitempty"`
	// Degree is the regular-graph degree; Arity and Depth size the
	// complete tree; A and B size the complete bipartite graph.
	Degree int `json:"degree,omitempty"`
	Arity  int `json:"arity,omitempty"`
	Depth  int `json:"depth,omitempty"`
	A      int `json:"a,omitempty"`
	B      int `json:"b,omitempty"`
	// P is the G(n,p) edge probability.
	P float64 `json:"p,omitempty"`
	// Seed drives the random families (gnp, regular).
	Seed uint64 `json:"seed,omitempty"`
	// Edges is the explicit edge list (family "edges"); parallel edges are
	// allowed, self-loops are not.
	Edges [][2]int `json:"edges,omitempty"`
}

// ModelSpec describes the Gibbs distribution. Kind selects the family;
// the other fields are per-family parameters.
type ModelSpec struct {
	// Kind is one of coloring|listcoloring|hardcore|independentset|
	// vertexcover|ising|potts|mrf|csp.
	Kind string `json:"kind"`
	// Q is the spin-domain size (coloring, listcoloring, potts, mrf, csp).
	Q int `json:"q,omitempty"`
	// Lambda is the hardcore fugacity.
	Lambda float64 `json:"lambda,omitempty"`
	// Beta is the Ising/Potts edge parameter.
	Beta float64 `json:"beta,omitempty"`
	// Field is the Ising external field.
	Field float64 `json:"field,omitempty"`
	// Lists[v] is vertex v's palette (listcoloring).
	Lists [][]int `json:"lists,omitempty"`
	// EdgeActivities holds q×q symmetric matrices row-major (kind mrf):
	// either one shared matrix or one per edge, in edge-ID order.
	EdgeActivities [][]float64 `json:"edgeActivities,omitempty"`
	// VertexActivities holds length-q activity vectors (kinds mrf and
	// csp): either one shared vector or one per vertex.
	VertexActivities [][]float64 `json:"vertexActivities,omitempty"`
	// Constraints lists the weighted local constraints (kind csp).
	Constraints []ConstraintSpec `json:"constraints,omitempty"`
	// Init optionally pins the chain's starting configuration (kind csp,
	// which needs a feasible start the server cannot always derive).
	Init []int `json:"init,omitempty"`
	// Rounds optionally sets the default chain-iteration budget (kind
	// csp, which has no theory budget; requests may override it).
	Rounds int `json:"rounds,omitempty"`
	// Shards optionally sets the default shard count the serving layer
	// runs this model's draws with (every kind, CSPs included; requests may
	// override it). Sharding never changes outputs — a sharded draw is
	// bit-identical to the centralized chain at the same seed — so this is
	// a serving default, not part of the distribution.
	Shards int `json:"shards,omitempty"`
	// Parallel optionally sets the default vertex-parallel worker count the
	// serving layer runs this model's centralized draws with (every kind,
	// CSPs included; requests may override it). Like Shards it never
	// changes outputs — parallel rounds are bit-identical to sequential
	// rounds at every worker count — and the two are mutually exclusive per
	// draw.
	Parallel int `json:"parallel,omitempty"`
}

// ConstraintSpec is one weighted local constraint in serializable form.
type ConstraintSpec struct {
	// Kind is "table" (explicit factor values), "cover" (at least one
	// scope vertex has spin 1; requires q = 2), or "notallequal" (the
	// scope is not monochromatic).
	Kind string `json:"kind"`
	// Scope lists the distinct vertices the constraint reads.
	Scope []int `json:"scope"`
	// Table holds the q^len(Scope) factor values for kind "table",
	// with Scope[0] varying fastest.
	Table []float64 `json:"table,omitempty"`
}

// Decode parses, strictly validates, and returns a spec. Unknown fields,
// trailing data, oversized payloads, wrong versions, and semantically
// invalid workloads are all rejected.
func Decode(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("spec: %d bytes exceeds the %d-byte limit", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: invalid JSON: %w", err)
	}
	// Only a clean EOF after the spec object is acceptable: a successful
	// second decode means valid trailing JSON, any other error means
	// trailing garbage.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("spec: trailing data after the spec object")
	}
	s.Graph.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode validates s and returns its canonical JSON encoding — the byte
// string the content hash is computed over. s itself is never modified;
// the canonical default-family spelling is applied to a copy.
func Encode(s *Spec) ([]byte, error) {
	c := *s // shallow copy: normalization only writes Graph.Family
	c.Graph.normalize()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(&c)
}

// Hash returns the canonical content address of s:
// "sha256:" + hex(SHA-256(Encode(s))).
func Hash(s *Spec) (string, error) {
	data, err := Encode(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Validate checks the spec semantically: version, graph family and
// parameters, model family and parameters, and every size limit. It does
// not build or modify anything.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: version %q, want %q", s.Version, Version)
	}
	if err := s.Graph.checkStray(); err != nil {
		return err
	}
	n, m, err := s.Graph.size()
	if err != nil {
		return err
	}
	return s.Model.validate(n, m, s.Graph.Family == "gnp")
}

// normalize canonicalizes the default family spelling: an empty family
// with an edge list becomes the explicit "edges", so every accepted
// spelling of a workload encodes — and therefore hashes — identically.
// Decode applies it to the value it owns; Encode applies it to a copy.
func (g *GraphSpec) normalize() {
	if g.Family == "" && len(g.Edges) > 0 {
		g.Family = "edges"
	}
}

// graphFieldsByFamily names the GraphSpec fields each family reads.
// Validation rejects set fields outside the family's row: an inert
// parameter (say, a seed on a grid) would be silently ignored by Build yet
// still change the content hash, splitting one workload across several
// registry and cache entries.
var graphFieldsByFamily = map[string][]string{
	"edges":     {"n", "edges"},
	"path":      {"n"},
	"cycle":     {"n"},
	"complete":  {"n"},
	"star":      {"n"},
	"grid":      {"rows", "cols"},
	"torus":     {"rows", "cols"},
	"bipartite": {"a", "b"},
	"tree":      {"arity", "depth"},
	"hypercube": {"dim"},
	"regular":   {"n", "degree", "seed"},
	"gnp":       {"n", "p", "seed"},
}

// checkStray rejects graph fields set to non-zero values that the declared
// family does not read.
func (g *GraphSpec) checkStray() error {
	fam := g.Family
	if fam == "" && len(g.Edges) > 0 {
		fam = "edges"
	}
	allowed, ok := graphFieldsByFamily[fam]
	if !ok {
		return nil // size() reports unknown families with a better message
	}
	set := map[string]bool{
		"n":      g.N != 0,
		"rows":   g.Rows != 0,
		"cols":   g.Cols != 0,
		"dim":    g.Dim != 0,
		"degree": g.Degree != 0,
		"arity":  g.Arity != 0,
		"depth":  g.Depth != 0,
		"a":      g.A != 0,
		"b":      g.B != 0,
		"p":      g.P != 0,
		"seed":   g.Seed != 0,
		"edges":  len(g.Edges) != 0,
	}
	for _, f := range allowed {
		delete(set, f)
	}
	for name, isSet := range set {
		if isSet {
			return fmt.Errorf("spec: graph family %q does not take field %q", g.Family, name)
		}
	}
	return nil
}

// size validates the graph spec and returns the vertex and edge counts the
// built graph will have (edge counts for random families are upper bounds
// used only for limit checks).
func (g *GraphSpec) size() (n, m int, err error) {
	fam := g.Family
	if fam == "" && len(g.Edges) > 0 {
		fam = "edges"
	}
	switch fam {
	case "edges":
		n, m = g.N, len(g.Edges)
		if n < 1 {
			return 0, 0, fmt.Errorf("spec: graph needs n >= 1, got %d", g.N)
		}
		for i, e := range g.Edges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				return 0, 0, fmt.Errorf("spec: edge %d (%d,%d) out of range [0,%d)", i, e[0], e[1], n)
			}
			if e[0] == e[1] {
				return 0, 0, fmt.Errorf("spec: edge %d is a self-loop at %d", i, e[0])
			}
		}
	case "path":
		if g.N < 1 {
			return 0, 0, fmt.Errorf("spec: path needs n >= 1, got %d", g.N)
		}
		n, m = g.N, g.N-1
	case "cycle":
		if g.N < 3 {
			return 0, 0, fmt.Errorf("spec: cycle needs n >= 3, got %d", g.N)
		}
		n, m = g.N, g.N
	case "grid":
		if g.Rows < 1 || g.Cols < 1 {
			return 0, 0, fmt.Errorf("spec: grid needs rows, cols >= 1, got %dx%d", g.Rows, g.Cols)
		}
		if g.Rows > MaxVertices || g.Cols > MaxVertices {
			return 0, 0, fmt.Errorf("spec: grid %dx%d too large", g.Rows, g.Cols)
		}
		// Exact, not an estimate: validateMRF checks per-edge activity
		// lists against this count.
		n, m = g.Rows*g.Cols, g.Rows*(g.Cols-1)+g.Cols*(g.Rows-1)
	case "torus":
		if g.Rows < 3 || g.Cols < 3 {
			return 0, 0, fmt.Errorf("spec: torus needs rows, cols >= 3, got %dx%d", g.Rows, g.Cols)
		}
		if g.Rows > MaxVertices || g.Cols > MaxVertices {
			return 0, 0, fmt.Errorf("spec: torus %dx%d too large", g.Rows, g.Cols)
		}
		n, m = g.Rows*g.Cols, 2*g.Rows*g.Cols
	case "complete":
		if g.N < 1 {
			return 0, 0, fmt.Errorf("spec: complete graph needs n >= 1, got %d", g.N)
		}
		if g.N > 4096 {
			return 0, 0, fmt.Errorf("spec: complete graph on %d vertices too large", g.N)
		}
		n, m = g.N, g.N*(g.N-1)/2
	case "star":
		if g.N < 1 {
			return 0, 0, fmt.Errorf("spec: star needs n >= 1, got %d", g.N)
		}
		n, m = g.N, g.N-1
	case "bipartite":
		if g.A < 1 || g.B < 1 {
			return 0, 0, fmt.Errorf("spec: bipartite needs a, b >= 1, got %d,%d", g.A, g.B)
		}
		if g.A > 4096 || g.B > 4096 {
			return 0, 0, fmt.Errorf("spec: bipartite %d,%d too large", g.A, g.B)
		}
		n, m = g.A+g.B, g.A*g.B
	case "tree":
		if g.Arity < 1 {
			return 0, 0, fmt.Errorf("spec: tree needs arity >= 1, got %d", g.Arity)
		}
		if g.Depth < 0 || g.Depth > 30 {
			return 0, 0, fmt.Errorf("spec: tree depth %d out of range [0,30]", g.Depth)
		}
		n = 1
		pow := 1
		for i := 0; i < g.Depth; i++ {
			pow *= g.Arity
			n += pow
			if n > MaxVertices {
				return 0, 0, fmt.Errorf("spec: tree arity %d depth %d too large", g.Arity, g.Depth)
			}
		}
		m = n - 1
	case "hypercube":
		if g.Dim < 0 || g.Dim > 20 {
			return 0, 0, fmt.Errorf("spec: hypercube dimension %d out of range [0,20]", g.Dim)
		}
		n, m = 1<<g.Dim, g.Dim*(1<<g.Dim)/2
	case "regular":
		if g.N < 1 || g.Degree < 0 {
			return 0, 0, fmt.Errorf("spec: regular graph needs n >= 1, degree >= 0")
		}
		if g.Degree >= g.N {
			return 0, 0, fmt.Errorf("spec: regular graph needs degree < n, got degree=%d n=%d", g.Degree, g.N)
		}
		if g.N*g.Degree%2 != 0 {
			return 0, 0, fmt.Errorf("spec: regular graph needs n*degree even, got %d*%d", g.N, g.Degree)
		}
		n, m = g.N, g.N*g.Degree/2
	case "gnp":
		if g.N < 1 {
			return 0, 0, fmt.Errorf("spec: gnp needs n >= 1, got %d", g.N)
		}
		if g.N > 4096 {
			return 0, 0, fmt.Errorf("spec: gnp on %d vertices too large", g.N)
		}
		if g.P < 0 || g.P > 1 || math.IsNaN(g.P) {
			return 0, 0, fmt.Errorf("spec: gnp needs p in [0,1], got %v", g.P)
		}
		n, m = g.N, g.N*(g.N-1)/2
	case "":
		return 0, 0, fmt.Errorf("spec: graph needs a family or an explicit edge list")
	default:
		return 0, 0, fmt.Errorf("spec: unknown graph family %q", fam)
	}
	if n > MaxVertices {
		return 0, 0, fmt.Errorf("spec: %d vertices exceeds the %d limit", n, MaxVertices)
	}
	if m > MaxEdges {
		return 0, 0, fmt.Errorf("spec: %d edges exceeds the %d limit", m, MaxEdges)
	}
	return n, m, nil
}

// fieldsByKind names the ModelSpec fields each kind reads. Validation
// rejects set fields outside the kind's row: a stray parameter would be
// silently ignored by Build yet still change the content hash, splitting
// one workload across several cache entries.
var fieldsByKind = map[string][]string{
	"coloring":       {"q", "shards", "parallel"},
	"listcoloring":   {"q", "lists", "shards", "parallel"},
	"hardcore":       {"lambda", "shards", "parallel"},
	"independentset": {"shards", "parallel"},
	"vertexcover":    {"shards", "parallel"},
	"ising":          {"beta", "field", "shards", "parallel"},
	"potts":          {"q", "beta", "shards", "parallel"},
	"mrf":            {"q", "edgeActivities", "vertexActivities", "shards", "parallel"},
	"csp":            {"q", "vertexActivities", "constraints", "init", "rounds", "shards", "parallel"},
}

// checkStray rejects model fields set to non-zero values that the declared
// kind does not read.
func (ms *ModelSpec) checkStray() error {
	set := map[string]bool{
		"q":                ms.Q != 0,
		"lambda":           ms.Lambda != 0,
		"beta":             ms.Beta != 0,
		"field":            ms.Field != 0,
		"lists":            len(ms.Lists) != 0,
		"edgeActivities":   len(ms.EdgeActivities) != 0,
		"vertexActivities": len(ms.VertexActivities) != 0,
		"constraints":      len(ms.Constraints) != 0,
		"init":             len(ms.Init) != 0,
		"rounds":           ms.Rounds != 0,
		"shards":           ms.Shards != 0,
		"parallel":         ms.Parallel != 0,
	}
	for _, f := range fieldsByKind[ms.Kind] {
		delete(set, f)
	}
	for name, isSet := range set {
		if isSet {
			return fmt.Errorf("spec: model kind %q does not take field %q", ms.Kind, name)
		}
	}
	return nil
}

func (ms *ModelSpec) validate(n, m int, randomM bool) error {
	if _, ok := fieldsByKind[ms.Kind]; ok {
		if err := ms.checkStray(); err != nil {
			return err
		}
	}
	if ms.Shards != 0 {
		if ms.Shards < 0 || ms.Shards > MaxShards {
			return fmt.Errorf("spec: shards must be in [0,%d], got %d", MaxShards, ms.Shards)
		}
		if ms.Shards > n {
			return fmt.Errorf("spec: %d shards for %d vertices (every shard must own a vertex)", ms.Shards, n)
		}
	}
	if ms.Parallel != 0 {
		if ms.Parallel < 0 || ms.Parallel > MaxParallel {
			return fmt.Errorf("spec: parallel must be in [0,%d], got %d", MaxParallel, ms.Parallel)
		}
		if ms.Shards > 1 && ms.Parallel > 1 {
			return fmt.Errorf("spec: shards and parallel are mutually exclusive serving defaults")
		}
	}
	switch ms.Kind {
	case "coloring":
		return ms.needQ(2)
	case "listcoloring":
		if err := ms.needQ(2); err != nil {
			return err
		}
		if len(ms.Lists) != n {
			return fmt.Errorf("spec: listcoloring has %d lists for %d vertices", len(ms.Lists), n)
		}
		for v, list := range ms.Lists {
			if len(list) == 0 {
				return fmt.Errorf("spec: listcoloring vertex %d has an empty list", v)
			}
			for _, c := range list {
				if c < 0 || c >= ms.Q {
					return fmt.Errorf("spec: listcoloring vertex %d color %d out of [0,%d)", v, c, ms.Q)
				}
			}
		}
		return nil
	case "hardcore":
		return checkParam("lambda", ms.Lambda)
	case "independentset", "vertexcover":
		return nil
	case "ising":
		if err := checkParam("beta", ms.Beta); err != nil {
			return err
		}
		return checkParam("field", ms.Field)
	case "potts":
		if err := ms.needQ(2); err != nil {
			return err
		}
		return checkParam("beta", ms.Beta)
	case "mrf":
		return ms.validateMRF(n, m, randomM)
	case "csp":
		return ms.validateCSP(n)
	case "":
		return fmt.Errorf("spec: model needs a kind")
	default:
		return fmt.Errorf("spec: unknown model kind %q", ms.Kind)
	}
}

func (ms *ModelSpec) needQ(min int) error {
	if ms.Q < min || ms.Q > MaxQ {
		return fmt.Errorf("spec: model %s needs q in [%d,%d], got %d", ms.Kind, min, MaxQ, ms.Q)
	}
	return nil
}

func checkParam(name string, v float64) error {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("spec: %s must be finite and non-negative, got %v", name, v)
	}
	return nil
}

func (ms *ModelSpec) validateMRF(n, m int, randomM bool) error {
	if err := ms.needQ(2); err != nil {
		return err
	}
	q := ms.Q
	if randomM && len(ms.EdgeActivities) != 1 {
		// The edge count of a random family isn't known until the graph is
		// sampled, so per-edge lists cannot be validated (or authored).
		return fmt.Errorf("spec: mrf on a random graph family needs exactly 1 shared edge activity, got %d", len(ms.EdgeActivities))
	}
	if len(ms.EdgeActivities) != 1 && len(ms.EdgeActivities) != m {
		return fmt.Errorf("spec: mrf needs 1 (shared) or %d edge activities, got %d", m, len(ms.EdgeActivities))
	}
	for i, a := range ms.EdgeActivities {
		if len(a) != q*q {
			return fmt.Errorf("spec: mrf edge activity %d has %d entries, want %d", i, len(a), q*q)
		}
		if err := checkTable(fmt.Sprintf("edge activity %d", i), a); err != nil {
			return err
		}
	}
	if len(ms.VertexActivities) != 1 && len(ms.VertexActivities) != n {
		return fmt.Errorf("spec: mrf needs 1 (shared) or %d vertex activities, got %d", n, len(ms.VertexActivities))
	}
	return checkVertexActivities(ms.VertexActivities, q)
}

func (ms *ModelSpec) validateCSP(n int) error {
	if err := ms.needQ(2); err != nil {
		return err
	}
	q := ms.Q
	if len(ms.VertexActivities) != 0 && len(ms.VertexActivities) != 1 && len(ms.VertexActivities) != n {
		return fmt.Errorf("spec: csp needs 0, 1 (shared), or %d vertex activities, got %d", n, len(ms.VertexActivities))
	}
	if err := checkVertexActivities(ms.VertexActivities, q); err != nil {
		return err
	}
	if len(ms.Constraints) == 0 {
		return fmt.Errorf("spec: csp needs at least one constraint")
	}
	if len(ms.Constraints) > MaxConstraints {
		return fmt.Errorf("spec: %d constraints exceeds the %d limit", len(ms.Constraints), MaxConstraints)
	}
	tableEntries := 0
	for i := range ms.Constraints {
		c := &ms.Constraints[i]
		if len(c.Scope) == 0 || len(c.Scope) > MaxArity {
			return fmt.Errorf("spec: constraint %d arity %d out of [1,%d]", i, len(c.Scope), MaxArity)
		}
		seen := make(map[int]bool, len(c.Scope))
		for _, v := range c.Scope {
			if v < 0 || v >= n {
				return fmt.Errorf("spec: constraint %d scope vertex %d out of range [0,%d)", i, v, n)
			}
			if seen[v] {
				return fmt.Errorf("spec: constraint %d has duplicate scope vertex %d", i, v)
			}
			seen[v] = true
		}
		switch c.Kind {
		case "table":
			want := 1
			for range c.Scope {
				want *= q
				// Bounding each step keeps q^arity (up to 1024^8) from
				// overflowing before the comparison below.
				if want > MaxTableEntries {
					return fmt.Errorf("spec: constraint %d table q^%d exceeds %d entries", i, len(c.Scope), MaxTableEntries)
				}
			}
			if len(c.Table) != want {
				return fmt.Errorf("spec: constraint %d table has %d entries, want q^%d = %d", i, len(c.Table), len(c.Scope), want)
			}
			if err := checkTable(fmt.Sprintf("constraint %d table", i), c.Table); err != nil {
				return err
			}
			tableEntries += want
			if tableEntries > MaxTableEntries {
				return fmt.Errorf("spec: constraint tables exceed %d total entries", MaxTableEntries)
			}
		case "cover":
			if q != 2 {
				return fmt.Errorf("spec: constraint %d: cover requires q = 2, got %d", i, q)
			}
			if len(c.Table) != 0 {
				return fmt.Errorf("spec: constraint %d: cover takes no table", i)
			}
		case "notallequal":
			if len(c.Scope) < 2 {
				return fmt.Errorf("spec: constraint %d: notallequal needs arity >= 2", i)
			}
			if len(c.Table) != 0 {
				return fmt.Errorf("spec: constraint %d: notallequal takes no table", i)
			}
		default:
			return fmt.Errorf("spec: constraint %d has unknown kind %q", i, c.Kind)
		}
	}
	if len(ms.Init) != 0 {
		if len(ms.Init) != n {
			return fmt.Errorf("spec: csp init has length %d for %d vertices", len(ms.Init), n)
		}
		for v, x := range ms.Init {
			if x < 0 || x >= q {
				return fmt.Errorf("spec: csp init[%d] = %d out of [0,%d)", v, x, q)
			}
		}
	}
	if ms.Rounds < 0 {
		return fmt.Errorf("spec: csp rounds must be >= 0, got %d", ms.Rounds)
	}
	return nil
}

func checkVertexActivities(bs [][]float64, q int) error {
	for v, b := range bs {
		if len(b) != q {
			return fmt.Errorf("spec: vertex activity %d has length %d, want %d", v, len(b), q)
		}
		total := 0.0
		for _, x := range b {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("spec: vertex activity %d has invalid entry %v", v, x)
			}
			total += x
		}
		if total <= 0 {
			return fmt.Errorf("spec: vertex activity %d has zero mass", v)
		}
	}
	return nil
}

func checkTable(name string, t []float64) error {
	for _, x := range t {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("spec: %s has invalid entry %v", name, x)
		}
	}
	return nil
}
