package spec

import (
	"strings"
	"testing"
)

// TestSpecShardsField: the shards serving default is accepted on MRF
// kinds, round-trips through the canonical encoding, flows into Build,
// and is rejected where it cannot mean anything.
func TestSpecShardsField(t *testing.T) {
	good := `{
		"version": "locsample/v1",
		"graph": {"family": "grid", "rows": 4, "cols": 4},
		"model": {"kind": "coloring", "q": 8, "shards": 4}
	}`
	s, err := Decode([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Model.Shards != 4 {
		t.Fatalf("decoded shards = %d", s.Model.Shards)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Shards != 4 {
		t.Fatalf("built shards = %d", b.Shards)
	}
	enc, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"shards":4`) {
		t.Fatalf("canonical encoding lost shards: %s", enc)
	}
	// An identical spec without shards hashes differently (it is a
	// different serving contract) but an omitted field does not disturb
	// pre-existing hashes.
	plain := strings.Replace(good, `, "shards": 4`, "", 1)
	sp, err := Decode([]byte(plain))
	if err != nil {
		t.Fatal(err)
	}
	hp, _ := Hash(sp)
	hs, _ := Hash(s)
	if hp == hs {
		t.Fatal("shards field does not participate in the content hash")
	}

	// Since PR 5 the field is legal on kind csp too: CSP chains shard over
	// constraint-scope halos.
	cspSharded := `{
		"version": "locsample/v1",
		"graph": {"family": "cycle", "n": 4},
		"model": {"kind": "csp", "q": 2, "shards": 2, "constraints": [
			{"kind": "cover", "scope": [0, 1]}
		]}
	}`
	cs, err := Decode([]byte(cspSharded))
	if err != nil {
		t.Fatalf("csp shards field rejected: %v", err)
	}
	cb, err := Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Shards != 2 {
		t.Fatalf("built csp shards = %d, want 2", cb.Shards)
	}

	for name, bad := range map[string]string{
		"negative": `{
			"version": "locsample/v1",
			"graph": {"family": "grid", "rows": 4, "cols": 4},
			"model": {"kind": "coloring", "q": 8, "shards": -1}
		}`,
		"more-than-n": `{
			"version": "locsample/v1",
			"graph": {"family": "grid", "rows": 2, "cols": 2},
			"model": {"kind": "coloring", "q": 8, "shards": 5}
		}`,
		"over-limit": `{
			"version": "locsample/v1",
			"graph": {"family": "grid", "rows": 2000, "cols": 2},
			"model": {"kind": "coloring", "q": 8, "shards": 2000}
		}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Fatalf("%s: invalid shards accepted", name)
		}
	}
}
