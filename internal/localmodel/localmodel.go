// Package localmodel simulates Linial's LOCAL model of distributed
// computation (§2.1): a network of n processors, one per vertex of an
// undirected graph, computing in synchronized rounds. In each round every
// processor receives a message of arbitrary size from each neighbor,
// performs arbitrary local computation, and sends a message of arbitrary
// size to each neighbor. The output of a t-round protocol at a vertex is a
// function of the information in its t-neighborhood — the only property the
// paper's lower bounds use (Eq. 27).
//
// Nodes execute concurrently (a pool of goroutines sweeps the vertex set
// every round), and the runtime accounts for message sizes so experiments
// can verify the paper's claim that neither algorithm abuses the model
// ("each message is of O(log n) bits", §1.1).
//
// Following §2.1, every node knows n and Δ (upper bounds suffice; they only
// enter the round budgets of the Monte Carlo protocols). The shared seed
// models a common random string used for the per-edge coins of
// LocalMetropolis — both endpoints of an edge evaluate the same PRF, which
// is how the simulator realizes "the two endpoints u and v access the same
// random coin" without extra communication.
package localmodel

import (
	"fmt"
	"runtime"
	"sync"

	"locsample/internal/graph"
)

// Env is the read-only environment a node sees when the protocol starts.
type Env struct {
	// V is the node's unique identifier (its vertex index).
	V int
	// Deg is the node's degree; messages are exchanged per incident edge.
	Deg int
	// N is (an upper bound on) the network size, known to all nodes (§2.1).
	N int
	// MaxDeg is (an upper bound on) the maximum degree Δ, known to all
	// nodes (§2.1).
	MaxDeg int
	// EdgeIDs lists the global identifiers of the node's incident edges,
	// aligned with neighbor slots 0..Deg-1. Endpoints of an edge see the
	// same identifier; protocols key shared coins on it. (In a real
	// deployment the two endpoints would canonically derive a key from
	// their IDs during setup; the simulator hands out edge indices.)
	EdgeIDs []int64
	// IsEdgeU[i] reports whether this node is the canonical first endpoint
	// of its i-th incident edge. Protocols that evaluate a shared formula
	// over edge state use it to fix one operand order at both endpoints, so
	// floating-point products agree bit-for-bit.
	IsEdgeU []bool
	// SharedSeed is the common random string for shared PRF coins.
	SharedSeed uint64
	// PrivateSeed seeds the node's private randomness.
	PrivateSeed uint64
}

// Protocol is a node program. The runtime calls Init once, then Round for
// t = 0, 1, 2, … until every node halts (or the round budget is exhausted).
//
// in[i] is the message the i-th neighbor sent in the previous round (nil in
// round 0, and nil if that neighbor sent nothing). out[i] is the message to
// send to the i-th neighbor (nil to send nothing). A node that returns
// halt = true is not called again and implicitly sends nothing afterwards.
type Protocol interface {
	Init(env Env)
	Round(t int, in [][]byte) (out [][]byte, halt bool)
	Output() int
}

// Stats aggregates a run's communication profile.
type Stats struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// Messages counts non-nil messages delivered.
	Messages int64
	// Bytes counts total payload bytes.
	Bytes int64
	// MaxMessageBytes is the largest single message payload.
	MaxMessageBytes int
}

// Runner executes a Protocol instance per vertex of a graph.
type Runner struct {
	g      *graph.Graph
	protos []Protocol
	// slot[e] gives, for edge e = (u,v), the index of e in Inc(u) and
	// Inc(v): messages from u along e land in v's inbox at slot[e][1], and
	// vice versa.
	slotU, slotV []int32
	workers      int
}

// Config carries the run-wide parameters handed to every node's Env.
type Config struct {
	SharedSeed uint64
	// PrivateSeed(v) returns node v's private seed. If nil, seeds are
	// derived from SharedSeed and v (convenient and reproducible; the
	// distinction only matters for lower-bound discussions).
	PrivateSeed func(v int) uint64
	// Workers bounds the goroutine pool (default: GOMAXPROCS).
	Workers int
}

// New builds a Runner: factory(v) constructs the protocol instance for
// vertex v, which is immediately initialized with its Env.
func New(g *graph.Graph, cfg Config, factory func(v int) Protocol) *Runner {
	r := &Runner{
		g:       g,
		protos:  make([]Protocol, g.N()),
		slotU:   make([]int32, g.M()),
		slotV:   make([]int32, g.M()),
		workers: cfg.Workers,
	}
	if r.workers <= 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	for v := 0; v < g.N(); v++ {
		for i, id := range g.Inc(v) {
			e := g.Edge(int(id))
			if int32(v) == e.U {
				r.slotU[id] = int32(i)
			} else {
				r.slotV[id] = int32(i)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		edgeIDs := make([]int64, g.Deg(v))
		isU := make([]bool, g.Deg(v))
		for i, id := range g.Inc(v) {
			edgeIDs[i] = int64(id)
			isU[i] = g.Edge(int(id)).U == int32(v)
		}
		priv := cfg.SharedSeed ^ (0x9e3779b97f4a7c15 * (uint64(v) + 1))
		if cfg.PrivateSeed != nil {
			priv = cfg.PrivateSeed(v)
		}
		p := factory(v)
		p.Init(Env{
			V:           v,
			Deg:         g.Deg(v),
			N:           g.N(),
			MaxDeg:      g.MaxDeg(),
			EdgeIDs:     edgeIDs,
			IsEdgeU:     isU,
			SharedSeed:  cfg.SharedSeed,
			PrivateSeed: priv,
		})
		r.protos[v] = p
	}
	return r
}

// Run executes up to maxRounds rounds and returns each node's output plus
// communication statistics. It returns an error only if maxRounds < 0.
func (r *Runner) Run(maxRounds int) ([]int, Stats, error) {
	if maxRounds < 0 {
		return nil, Stats{}, fmt.Errorf("localmodel: negative round budget %d", maxRounds)
	}
	n := r.g.N()
	inbox := make([][][]byte, n)
	outbox := make([][][]byte, n)
	halted := make([]bool, n)
	for v := 0; v < n; v++ {
		inbox[v] = make([][]byte, r.g.Deg(v))
		outbox[v] = make([][]byte, r.g.Deg(v))
	}

	var stats Stats
	type shard struct {
		messages int64
		bytes    int64
		maxMsg   int
		halted   int
	}

	for t := 0; t < maxRounds; t++ {
		shards := make([]shard, r.workers)
		var wg sync.WaitGroup
		chunk := (n + r.workers - 1) / r.workers
		for w := 0; w < r.workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sh := &shards[w]
				for v := lo; v < hi; v++ {
					if halted[v] {
						sh.halted++
						for i := range outbox[v] {
							outbox[v][i] = nil
						}
						continue
					}
					out, halt := r.protos[v].Round(t, inbox[v])
					if halt {
						halted[v] = true
						sh.halted++
					}
					ob := outbox[v]
					for i := range ob {
						ob[i] = nil
					}
					for i, msg := range out {
						if i >= len(ob) {
							break
						}
						ob[i] = msg
						if msg != nil {
							sh.messages++
							sh.bytes += int64(len(msg))
							if len(msg) > sh.maxMsg {
								sh.maxMsg = len(msg)
							}
						}
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		stats.Rounds = t + 1

		allHalted := 0
		for _, sh := range shards {
			stats.Messages += sh.messages
			stats.Bytes += sh.bytes
			if sh.maxMsg > stats.MaxMessageBytes {
				stats.MaxMessageBytes = sh.maxMsg
			}
			allHalted += sh.halted
		}

		// Deliver: the message v sent on its i-th incident edge arrives at
		// the opposite endpoint's slot for that edge.
		for v := 0; v < n; v++ {
			inc := r.g.Inc(v)
			for i, id := range inc {
				e := r.g.Edge(int(id))
				if int32(v) == e.U {
					inbox[e.V][r.slotV[id]] = outbox[v][i]
				} else {
					inbox[e.U][r.slotU[id]] = outbox[v][i]
				}
			}
		}

		if allHalted == n {
			break
		}
	}

	outputs := make([]int, n)
	for v := 0; v < n; v++ {
		outputs[v] = r.protos[v].Output()
	}
	return outputs, stats, nil
}
