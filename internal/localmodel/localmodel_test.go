package localmodel

import (
	"encoding/binary"
	"testing"

	"locsample/internal/graph"
)

// echoNode broadcasts its ID for `ttl` rounds and records everything heard;
// its output is the sum of all IDs it has seen (including its own). After t
// rounds a node must know exactly its t-ball.
type echoNode struct {
	env   Env
	seen  map[int]bool
	ttl   int
	relay bool
}

func (e *echoNode) Init(env Env) {
	e.env = env
	e.seen = map[int]bool{env.V: true}
}

func (e *echoNode) Round(t int, in [][]byte) ([][]byte, bool) {
	for _, msg := range in {
		if msg == nil {
			continue
		}
		for i := 0; i+4 <= len(msg); i += 4 {
			e.seen[int(binary.LittleEndian.Uint32(msg[i:]))] = true
		}
	}
	if t == e.ttl {
		return nil, true
	}
	var payload []byte
	if e.relay {
		payload = make([]byte, 0, 4*len(e.seen))
		for id := range e.seen {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(id))
			payload = append(payload, b[:]...)
		}
	} else {
		payload = make([]byte, 4)
		binary.LittleEndian.PutUint32(payload, uint32(e.env.V))
	}
	out := make([][]byte, e.env.Deg)
	for i := range out {
		out[i] = payload
	}
	return out, false
}

func (e *echoNode) Output() int {
	sum := 0
	for id := range e.seen {
		sum += id
	}
	return sum
}

func TestSingleRoundSeesNeighbors(t *testing.T) {
	g := graph.Star(5) // center 0, leaves 1..4
	r := New(g, Config{SharedSeed: 1}, func(v int) Protocol { return &echoNode{ttl: 1} })
	out, stats, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// After 1 round the center saw everyone: 0+1+2+3+4 = 10.
	if out[0] != 10 {
		t.Fatalf("center output %d, want 10", out[0])
	}
	// Leaf 3 saw only itself and the center: 3.
	if out[3] != 3 {
		t.Fatalf("leaf output %d, want 3", out[3])
	}
	if stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (send round + final halting round)", stats.Rounds)
	}
}

func TestTBallVisibility(t *testing.T) {
	// On a path, a relaying node's knowledge after t rounds is exactly its
	// t-ball — the locality property (27) the lower bounds rest on.
	g := graph.Path(9)
	for _, ttl := range []int{1, 2, 3} {
		r := New(g, Config{SharedSeed: 1}, func(v int) Protocol { return &echoNode{ttl: ttl, relay: true} })
		out, _, err := r.Run(ttl + 1)
		if err != nil {
			t.Fatal(err)
		}
		// Vertex 4's t-ball on the path is {4-ttl, ..., 4+ttl}.
		want := 0
		for u := 4 - ttl; u <= 4+ttl; u++ {
			want += u
		}
		if out[4] != want {
			t.Fatalf("ttl=%d: vertex 4 knows sum %d, want %d", ttl, out[4], want)
		}
	}
}

func TestNoLeakBeyondHorizon(t *testing.T) {
	// After t rounds, information cannot travel farther than distance t.
	g := graph.Path(20)
	r := New(g, Config{SharedSeed: 9}, func(v int) Protocol { return &echoNode{ttl: 3, relay: true} })
	out, _, err := r.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 must not know vertex 5 (distance 5 > 3): its knowledge is
	// {0,1,2,3} summing to 6.
	if out[0] != 6 {
		t.Fatalf("vertex 0 output %d, want 6 (knowledge {0,1,2,3})", out[0])
	}
}

type statNode struct {
	env Env
	t   int
}

func (s *statNode) Init(env Env) { s.env = env }
func (s *statNode) Round(t int, in [][]byte) ([][]byte, bool) {
	s.t = t
	if t >= 2 {
		return nil, true
	}
	out := make([][]byte, s.env.Deg)
	for i := range out {
		out[i] = make([]byte, 7) // 7-byte payload
	}
	return out, false
}
func (s *statNode) Output() int { return s.t }

func TestStatsAccounting(t *testing.T) {
	g := graph.Cycle(6) // 6 vertices, 12 directed messages per round
	r := New(g, Config{SharedSeed: 2}, func(v int) Protocol { return &statNode{} })
	_, stats, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 0 and 1 send; round 2 halts. 12 messages × 2 rounds.
	if stats.Messages != 24 {
		t.Fatalf("messages = %d, want 24", stats.Messages)
	}
	if stats.Bytes != 24*7 {
		t.Fatalf("bytes = %d, want %d", stats.Bytes, 24*7)
	}
	if stats.MaxMessageBytes != 7 {
		t.Fatalf("max message = %d, want 7", stats.MaxMessageBytes)
	}
	if stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", stats.Rounds)
	}
}

func TestEnvFields(t *testing.T) {
	g := graph.Star(4)
	envs := make([]Env, g.N())
	r := New(g, Config{SharedSeed: 77}, func(v int) Protocol {
		return &envRecorder{sink: &envs[v]}
	})
	if _, _, err := r.Run(1); err != nil {
		t.Fatal(err)
	}
	if envs[0].Deg != 3 || envs[1].Deg != 1 {
		t.Fatalf("degrees: %d, %d", envs[0].Deg, envs[1].Deg)
	}
	if envs[0].N != 4 || envs[0].MaxDeg != 3 {
		t.Fatalf("N=%d MaxDeg=%d", envs[0].N, envs[0].MaxDeg)
	}
	if envs[0].SharedSeed != 77 {
		t.Fatal("shared seed not propagated")
	}
	if envs[1].PrivateSeed == envs[2].PrivateSeed {
		t.Fatal("private seeds collide")
	}
	// Edge IDs must agree across endpoints: star edges are (0,i).
	if envs[0].EdgeIDs[0] != envs[1].EdgeIDs[0] {
		t.Fatal("edge IDs disagree between endpoints")
	}
	// Exactly one endpoint of each edge is the canonical U.
	if envs[0].IsEdgeU[0] == envs[1].IsEdgeU[0] {
		t.Fatal("both endpoints claim the same edge orientation")
	}
}

type envRecorder struct{ sink *Env }

func (e *envRecorder) Init(env Env)                         { *e.sink = env }
func (e *envRecorder) Round(int, [][]byte) ([][]byte, bool) { return nil, true }
func (e *envRecorder) Output() int                          { return 0 }

func TestRunErrors(t *testing.T) {
	g := graph.Path(2)
	r := New(g, Config{}, func(v int) Protocol { return &statNode{} })
	if _, _, err := r.Run(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestRoundBudgetStops(t *testing.T) {
	// A protocol that never halts is stopped by the budget.
	g := graph.Cycle(4)
	r := New(g, Config{}, func(v int) Protocol { return &foreverNode{} })
	_, stats, err := r.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", stats.Rounds)
	}
}

type foreverNode struct{ env Env }

func (f *foreverNode) Init(env Env) { f.env = env }
func (f *foreverNode) Round(t int, in [][]byte) ([][]byte, bool) {
	return make([][]byte, f.env.Deg), false
}
func (f *foreverNode) Output() int { return 0 }

func TestWorkerCountIndependence(t *testing.T) {
	// Results must not depend on the worker pool size.
	g := graph.Grid(4, 5)
	run := func(workers int) []int {
		r := New(g, Config{SharedSeed: 5, Workers: workers},
			func(v int) Protocol { return &echoNode{ttl: 3, relay: true} })
		out, _, err := r.Run(5)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := run(1), run(4), run(16)
	for v := range a {
		if a[v] != b[v] || a[v] != c[v] {
			t.Fatalf("outputs differ across worker counts at vertex %d", v)
		}
	}
}

func TestParallelEdgeDelivery(t *testing.T) {
	// Multigraph: two parallel edges between 0 and 1 give two independent
	// message slots.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	r := New(g, Config{}, func(v int) Protocol { return &slotEcho{} })
	out, _, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Each node received both slot markers: 0*16+0 and 1*16+1 → sum 17.
	if out[0] != 17 || out[1] != 17 {
		t.Fatalf("outputs %v, want [17 17]", out)
	}
}

// oversizedNode returns more output messages than it has neighbors; the
// runtime must ignore the extras rather than crash or misdeliver.
type oversizedNode struct {
	env Env
	got int
}

func (o *oversizedNode) Init(env Env) { o.env = env }
func (o *oversizedNode) Round(t int, in [][]byte) ([][]byte, bool) {
	for _, m := range in {
		if m != nil {
			o.got++
		}
	}
	if t >= 1 {
		return nil, true
	}
	out := make([][]byte, o.env.Deg+5)
	for i := range out {
		out[i] = []byte{1}
	}
	return out, false
}
func (o *oversizedNode) Output() int { return o.got }

func TestOversizedOutboxIgnored(t *testing.T) {
	g := graph.Path(3)
	r := New(g, Config{}, func(v int) Protocol { return &oversizedNode{} })
	out, stats, err := r.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// The middle vertex has 2 neighbors, end vertices 1: received counts.
	if out[0] != 1 || out[1] != 2 || out[2] != 1 {
		t.Fatalf("outputs %v", out)
	}
	// Only deg-many messages counted: 1+2+1 = 4.
	if stats.Messages != 4 {
		t.Fatalf("messages = %d, want 4", stats.Messages)
	}
}

// slotEcho sends its slot index on each incident edge and sums what arrives.
type slotEcho struct {
	env Env
	sum int
}

func (s *slotEcho) Init(env Env) { s.env = env }
func (s *slotEcho) Round(t int, in [][]byte) ([][]byte, bool) {
	for slot, msg := range in {
		if msg != nil {
			s.sum += int(msg[0])*16 + slot
		}
	}
	if t == 1 {
		return nil, true
	}
	out := make([][]byte, s.env.Deg)
	for i := range out {
		out[i] = []byte{byte(i)}
	}
	return out, false
}
func (s *slotEcho) Output() int { return s.sum }
