// Package chains implements the Markov chains studied in the paper as
// centralized simulations: the sequential single-site Glauber dynamics (§3),
// the LubyGlauber chain (Algorithm 1), the LocalMetropolis chain
// (Algorithm 2), and two classical baselines (systematic scan and the
// chromatic-scheduler parallel Glauber of [28], both discussed in §3).
//
// All randomness is derived from a single seed via the PRF in internal/rng,
// keyed by (tag, vertex/edge, round). Consequently a chain trajectory is a
// pure function of (model, initial configuration, seed) — and the
// distributed protocols in internal/dist, which derive the same variates
// from the same keys, reproduce centralized trajectories bit-for-bit. That
// equivalence is an integration test, not an accident.
package chains

import (
	"fmt"

	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// PRF key tags. Distinct tags separate the randomness consumed by different
// parts of a round.
const (
	TagBeta   = 0x1001 // Luby-step IDs β_v
	TagUpdate = 0x1002 // resampling / proposal uniforms per vertex
	TagCoin   = 0x1003 // per-edge filter coins
	TagPick   = 0x1004 // Glauber vertex choice
)

// Algorithm selects a chain.
type Algorithm int

const (
	// Glauber is the sequential single-site heat-bath dynamics; one Step is
	// one single-site update (n Steps ≈ one parallel round of work).
	Glauber Algorithm = iota
	// LubyGlauber is Algorithm 1: Luby-step independent set + parallel
	// heat-bath resampling.
	LubyGlauber
	// LocalMetropolis is Algorithm 2: simultaneous proposals + per-edge
	// filtering.
	LocalMetropolis
	// SystematicScan resamples vertices in fixed round-robin order
	// (the classical scan baseline of [17, 18]).
	SystematicScan
	// ChromaticGlauber partitions V by a greedy proper coloring and updates
	// one color class per round (the chromatic scheduler of [28]).
	ChromaticGlauber
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Glauber:
		return "Glauber"
	case LubyGlauber:
		return "LubyGlauber"
	case LocalMetropolis:
		return "LocalMetropolis"
	case SystematicScan:
		return "SystematicScan"
	case ChromaticGlauber:
		return "ChromaticGlauber"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configure a Sampler.
type Options struct {
	// DropRule3 removes the third factor Ã_e(σ_u, X_v) from the
	// LocalMetropolis edge filter — for colorings, exactly the paper's
	// "at first glance redundant" rule 3 (§4.2). The resulting chain is NOT
	// reversible and its stationary distribution is biased; experiment E4
	// quantifies the damage. It only affects LocalMetropolis.
	DropRule3 bool
}

// Sampler owns a chain state and advances it deterministically from a seed.
// A Sampler is reusable: Reset rewinds it to a fresh initial configuration
// and seed without reallocating state or scratch, which is what lets the
// batch engine draw many chains through one Sampler with zero steady-state
// allocations.
type Sampler struct {
	M    *mrf.MRF
	X    []int
	Alg  Algorithm
	Opts Options

	seed  uint64
	round int

	classes  [][]int // chromatic scheduler color classes
	coloring bool    // LocalMetropolis: take the §4.2 three-rule fast path
	scratch  *Scratch
}

// Scratch holds the per-step working buffers shared by the round functions.
type Scratch struct {
	beta []float64
	marg []float64
	prop []int
	pass []bool
}

// NewScratch returns buffers sized for model m.
func NewScratch(m *mrf.MRF) *Scratch {
	return &Scratch{
		beta: make([]float64, m.G.N()),
		marg: make([]float64, m.Q),
		prop: make([]int, m.G.N()),
		pass: make([]bool, m.G.M()),
	}
}

// NewSampler returns a Sampler starting from init (copied).
func NewSampler(m *mrf.MRF, init []int, seed uint64, alg Algorithm, opts Options) *Sampler {
	if len(init) != m.G.N() {
		panic("chains: initial configuration has wrong length")
	}
	s := &Sampler{
		M:       m,
		X:       append([]int(nil), init...),
		Alg:     alg,
		Opts:    opts,
		seed:    seed,
		scratch: NewScratch(m),
	}
	if alg == LocalMetropolis {
		// The specialized coloring round produces identical trajectories
		// (TestColoringFastPathMatchesGeneral) without touching floating
		// point on the hot path.
		s.coloring = m.IsColoringModel()
	}
	if alg == ChromaticGlauber {
		colors, used := m.G.GreedyColoring()
		s.classes = make([][]int, used)
		for v, c := range colors {
			s.classes[c] = append(s.classes[c], v)
		}
	}
	return s
}

// Round returns the number of steps taken so far.
func (s *Sampler) Round() int { return s.round }

// Reset rewinds the Sampler to round 0 with a new initial configuration
// (copied) and seed, reusing the existing state and scratch buffers. The
// subsequent trajectory is identical to that of a freshly constructed
// Sampler with the same arguments.
func (s *Sampler) Reset(init []int, seed uint64) {
	if len(init) != len(s.X) {
		panic("chains: initial configuration has wrong length")
	}
	copy(s.X, init)
	s.seed = seed
	s.round = 0
}

// Step advances the chain by one step (one single-site update for Glauber
// and SystematicScan; one full parallel round otherwise).
func (s *Sampler) Step() {
	switch s.Alg {
	case Glauber:
		GlauberStep(s.M, s.X, s.seed, s.round, s.scratch)
	case LubyGlauber:
		LubyGlauberRound(s.M, s.X, s.seed, s.round, s.scratch)
	case LocalMetropolis:
		if s.coloring {
			ColoringLocalMetropolisRound(s.M, s.X, s.seed, s.round, s.Opts.DropRule3, s.scratch)
		} else {
			LocalMetropolisRound(s.M, s.X, s.seed, s.round, s.Opts.DropRule3, s.scratch)
		}
	case SystematicScan:
		scanStep(s.M, s.X, s.seed, s.round, s.scratch)
	case ChromaticGlauber:
		chromaticRound(s.M, s.X, s.seed, s.round, s.classes, s.scratch)
	default:
		panic("chains: unknown algorithm")
	}
	s.round++
}

// Run advances the chain by t steps.
func (s *Sampler) Run(t int) {
	for i := 0; i < t; i++ {
		s.Step()
	}
}

// GlauberStep performs one single-site heat-bath update: pick a uniform
// vertex, resample it from the conditional marginal (2). If the marginal is
// undefined at the current configuration the vertex keeps its value (the §3
// assumption rules this out for the models we run).
func GlauberStep(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	n := m.G.N()
	v := int(rng.PRF(seed, TagPick, uint64(round)) % uint64(n))
	if m.MarginalInto(v, x, sc.marg) {
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		x[v] = rng.CategoricalU(sc.marg, u)
	}
}

// scanStep resamples vertex (round mod n) — systematic scan.
func scanStep(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	v := round % m.G.N()
	if m.MarginalInto(v, x, sc.marg) {
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		x[v] = rng.CategoricalU(sc.marg, u)
	}
}

// chromaticRound resamples every vertex of one greedy color class in
// parallel (the [28] chromatic scheduler). Vertices in a class are pairwise
// non-adjacent, so in-place updates are exact.
func chromaticRound(m *mrf.MRF, x []int, seed uint64, round int, classes [][]int, sc *Scratch) {
	class := classes[round%len(classes)]
	for _, v := range class {
		if m.MarginalInto(v, x, sc.marg) {
			u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
			x[v] = rng.CategoricalU(sc.marg, u)
		}
	}
}

// LubyStep computes the Luby-step random independent set of round `round`:
// β_v = PRF(seed, TagBeta, v, round) and v ∈ I iff β_v strictly exceeds
// every neighbor's β (Algorithm 1, lines 3–4). It fills sc.beta and returns
// the indicator in the provided slice (allocated if nil).
func LubyStep(g *graph.Graph, seed uint64, round int, sc *Scratch, inI []bool) []bool {
	n := g.N()
	if inI == nil {
		inI = make([]bool, n)
	}
	for v := 0; v < n; v++ {
		sc.beta[v] = rng.PRFFloat64(seed, TagBeta, uint64(v), uint64(round))
	}
	for v := 0; v < n; v++ {
		isMax := true
		for _, u := range g.Adj(v) {
			if sc.beta[u] >= sc.beta[v] {
				isMax = false
				break
			}
		}
		inI[v] = isMax
	}
	return inI
}

// LubyGlauberRound performs one round of Algorithm 1: select the Luby-step
// independent set I, then resample every v ∈ I from its conditional
// marginal, in parallel. Because I is independent, no resampled vertex
// reads another resampled vertex, so sequential in-place iteration realizes
// the parallel update exactly.
func LubyGlauberRound(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	g := m.G
	n := g.N()
	for v := 0; v < n; v++ {
		sc.beta[v] = rng.PRFFloat64(seed, TagBeta, uint64(v), uint64(round))
	}
	for v := 0; v < n; v++ {
		isMax := true
		for _, u := range g.Adj(v) {
			if sc.beta[u] >= sc.beta[v] {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		if m.MarginalInto(v, x, sc.marg) {
			u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
			x[v] = rng.CategoricalU(sc.marg, u)
		}
	}
}

// LocalMetropolisRound performs one round of Algorithm 2:
//
//  1. every vertex v proposes σ_v with probability ∝ b_v(σ_v);
//  2. every edge e = uv passes its check independently with probability
//     Ã_e(σ_u,σ_v)·Ã_e(X_u,σ_v)·Ã_e(σ_u,X_v), using the shared coin
//     PRF(seed, TagCoin, e, round);
//  3. v accepts σ_v iff all incident edges passed.
//
// With dropRule3 the factor Ã_e(σ_u, X_v) is omitted (E4 ablation; the
// resulting chain is biased).
func LocalMetropolisRound(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch) {
	g := m.G
	n := g.N()
	for v := 0; v < n; v++ {
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		sc.prop[v] = rng.CategoricalU(m.ProposalRow(v), u)
	}
	for id, e := range g.Edges() {
		p := EdgePassProb(m, id, x[e.U], x[e.V], sc.prop[e.U], sc.prop[e.V], dropRule3)
		coin := rng.PRFFloat64(seed, TagCoin, uint64(id), uint64(round))
		sc.pass[id] = coin < p
	}
	for v := 0; v < n; v++ {
		ok := true
		for _, id := range g.Inc(v) {
			if !sc.pass[id] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = sc.prop[v]
		}
	}
}

// EdgePassProb returns the LocalMetropolis filter probability of edge id
// given current spins (xu, xv) and proposals (su, sv) — the product of
// Algorithm 2's three factors (two with dropRule3). The expression is not
// symmetric in the endpoints: callers must pass values in the edge's
// stored U/V orientation. Exported so the sharded runtime
// (internal/cluster) evaluates exactly this expression, in this
// multiplication order, for its bit-identity contract.
func EdgePassProb(m *mrf.MRF, id, xu, xv, su, sv int, dropRule3 bool) float64 {
	a := m.NormalizedEdge(id)
	p := a.At(su, sv) * a.At(xu, sv)
	if !dropRule3 {
		p *= a.At(su, xv)
	}
	return p
}

// ColoringLocalMetropolisRound is the specialized proper-q-coloring fast
// path of Algorithm 2 (§4.2): uniform proposals and the three deterministic
// filter rules
//
//	reject at v if ∃u∈Γ(v): c_v = X_u  (rule 1),
//	                        c_v = c_u  (rule 2),
//	                        X_v = c_u  (rule 3).
//
// It consumes the PRF keys in exactly the same pattern as
// LocalMetropolisRound, so both functions produce identical trajectories on
// coloring models (tested), but this one does no floating-point activity
// arithmetic on the hot path. Strictly, int(u·q) can disagree with
// CategoricalU over q equal weights on a boundary set of u values of
// measure ~2^−53 per draw — never observed, but when exact fast/general
// agreement matters, compare like against like. The engine's determinism
// contracts are unaffected: Sampler.Step and the distributed protocol
// both take this path for coloring models.
func ColoringLocalMetropolisRound(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch) {
	g := m.G
	n := g.N()
	q := m.Q
	for v := 0; v < n; v++ {
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		sc.prop[v] = int(u * float64(q))
	}
	for id, e := range g.Edges() {
		cu, cv := sc.prop[e.U], sc.prop[e.V]
		ok := cu != cv && cv != x[e.U]
		if !dropRule3 {
			ok = ok && cu != x[e.V]
		}
		sc.pass[id] = ok
	}
	for v := 0; v < n; v++ {
		ok := true
		for _, id := range g.Inc(v) {
			if !sc.pass[id] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = sc.prop[v]
		}
	}
}

// GreedyFeasible constructs a feasible starting configuration by assigning
// vertices in index order, each to the value maximizing its conditional
// activity given already-assigned neighbors. For colorings with q ≥ Δ+1
// this is greedy coloring; for hardcore it returns the empty set. Returns
// an error if some vertex has no positive-activity value.
func GreedyFeasible(m *mrf.MRF) ([]int, error) {
	n := m.G.N()
	x := make([]int, n)
	assigned := make([]bool, n)
	for v := 0; v < n; v++ {
		bestC, bestW := -1, 0.0
		for c := 0; c < m.Q; c++ {
			w := m.VertexB[v][c]
			if w == 0 {
				continue
			}
			adj, inc := m.G.Adj(v), m.G.Inc(v)
			for i, u := range adj {
				if assigned[u] {
					w *= m.EdgeA[inc[i]].At(c, x[u])
					if w == 0 {
						break
					}
				}
			}
			if w > bestW {
				bestW, bestC = w, c
			}
		}
		if bestC < 0 {
			return nil, fmt.Errorf("chains: greedy construction stuck at vertex %d", v)
		}
		x[v] = bestC
		assigned[v] = true
	}
	return x, nil
}
