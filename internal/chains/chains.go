// Package chains implements the Markov chains studied in the paper as
// centralized simulations: the sequential single-site Glauber dynamics (§3),
// the LubyGlauber chain (Algorithm 1), the LocalMetropolis chain
// (Algorithm 2), and two classical baselines (systematic scan and the
// chromatic-scheduler parallel Glauber of [28], both discussed in §3).
//
// All randomness is derived from a single seed via the PRF in internal/rng,
// keyed by (tag, vertex/edge, round). Consequently a chain trajectory is a
// pure function of (model, initial configuration, seed) — and the
// distributed protocols in internal/dist, which derive the same variates
// from the same keys, reproduce centralized trajectories bit-for-bit. That
// equivalence is an integration test, not an accident.
package chains

import (
	"fmt"
	"sync/atomic"
	"time"

	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// RoundObserver receives one callback per completed round. It is the
// nil-checked instrumentation seam shared by every engine tier: the
// centralized Sampler here, the sharded cluster engines, and the CSP
// chains all invoke it with the same signature, and internal/obs
// provides implementations (trace recorder, metrics feeder) that
// satisfy it structurally without this package importing them.
//
// Contract: RoundDone must not allocate or block — it runs on the hot
// path of every instrumented round. shard is 0 for centralized chains;
// barrierNS is 0 where there is no barrier; flips < 0 means the kernel
// does not count accepted updates (the centralized baselines don't).
type RoundObserver interface {
	RoundDone(shard, round int, computeNS, barrierNS int64, flips int)
}

// PRF key tags. Distinct tags separate the randomness consumed by different
// parts of a round.
const (
	TagBeta   = 0x1001 // Luby-step IDs β_v
	TagUpdate = 0x1002 // resampling / proposal uniforms per vertex
	TagCoin   = 0x1003 // per-edge filter coins
	TagPick   = 0x1004 // Glauber vertex choice
)

// Algorithm selects a chain.
type Algorithm int

const (
	// Glauber is the sequential single-site heat-bath dynamics; one Step is
	// one single-site update (n Steps ≈ one parallel round of work).
	Glauber Algorithm = iota
	// LubyGlauber is Algorithm 1: Luby-step independent set + parallel
	// heat-bath resampling.
	LubyGlauber
	// LocalMetropolis is Algorithm 2: simultaneous proposals + per-edge
	// filtering.
	LocalMetropolis
	// SystematicScan resamples vertices in fixed round-robin order
	// (the classical scan baseline of [17, 18]).
	SystematicScan
	// ChromaticGlauber partitions V by a greedy proper coloring and updates
	// one color class per round (the chromatic scheduler of [28]).
	ChromaticGlauber
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Glauber:
		return "Glauber"
	case LubyGlauber:
		return "LubyGlauber"
	case LocalMetropolis:
		return "LocalMetropolis"
	case SystematicScan:
		return "SystematicScan"
	case ChromaticGlauber:
		return "ChromaticGlauber"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configure a Sampler.
type Options struct {
	// DropRule3 removes the third factor Ã_e(σ_u, X_v) from the
	// LocalMetropolis edge filter — for colorings, exactly the paper's
	// "at first glance redundant" rule 3 (§4.2). The resulting chain is NOT
	// reversible and its stationary distribution is biased; experiment E4
	// quantifies the damage. It only affects LocalMetropolis.
	DropRule3 bool
	// Parallel > 1 runs each round's phases (propose / edge-filter / accept
	// for LocalMetropolis, β-fill / resample for LubyGlauber) across that
	// many goroutines over contiguous CSR ranges, with a barrier between
	// phases. Trajectories are bit-identical to the sequential kernels at
	// every worker count: all randomness is PRF-keyed by global vertex/edge
	// IDs, every phase reads only state frozen by the previous barrier, and
	// phase writes are disjoint per index. Only LubyGlauber and
	// LocalMetropolis support it (the baselines are inherently sequential);
	// NewSampler panics on other algorithms.
	Parallel int
}

// Sampler owns a chain state and advances it deterministically from a seed.
// A Sampler is reusable: Reset rewinds it to a fresh initial configuration
// and seed without reallocating state or scratch, which is what lets the
// batch engine draw many chains through one Sampler with zero steady-state
// allocations.
type Sampler struct {
	M    *mrf.MRF
	X    []int
	Alg  Algorithm
	Opts Options

	seed  uint64
	round int

	classes  [][]int // chromatic scheduler color classes
	coloring bool    // LocalMetropolis: take the §4.2 three-rule fast path
	par      int     // effective vertex-parallel worker count (<= 1: sequential)
	scratch  *Scratch

	// Obs, when non-nil, is called once per Step with the step's wall
	// time. The nil check is the only per-step cost when disabled, and
	// the centralized kernels don't count flips (reported as -1).
	Obs RoundObserver

	// Abort, when non-nil, is polled between steps by Run: once it
	// reads true the loop returns early. It is the cancellation seam
	// for context-aware draws — a canceled request stops burning rounds
	// at the next round boundary. The chain state is then mid-run and
	// must be Reset before reuse (which every pooled caller does
	// anyway). Nil costs one pointer check per round.
	Abort *atomic.Bool
}

// Scratch holds the per-step working buffers shared by the round functions.
type Scratch struct {
	beta   []float64
	marg   []float64
	prop   []int
	pass   []bool
	accept []bool
	// margs[w] is worker w's private marginal buffer for the vertex-parallel
	// resample phase (the sequential kernels share marg).
	margs [][]float64
}

// NewScratch returns buffers sized for model m.
func NewScratch(m *mrf.MRF) *Scratch {
	return &Scratch{
		beta:   make([]float64, m.G.N()),
		marg:   make([]float64, m.Q),
		prop:   make([]int, m.G.N()),
		pass:   make([]bool, m.G.M()),
		accept: make([]bool, m.G.N()),
	}
}

// ensureParallel sizes the per-worker marginal buffers.
func (sc *Scratch) ensureParallel(q, workers int) {
	for len(sc.margs) < workers {
		sc.margs = append(sc.margs, make([]float64, q))
	}
}

// NewSampler returns a Sampler starting from init (copied).
func NewSampler(m *mrf.MRF, init []int, seed uint64, alg Algorithm, opts Options) *Sampler {
	if len(init) != m.G.N() {
		panic("chains: initial configuration has wrong length")
	}
	s := &Sampler{
		M:       m,
		X:       append([]int(nil), init...),
		Alg:     alg,
		Opts:    opts,
		seed:    seed,
		scratch: NewScratch(m),
	}
	if opts.Parallel > 1 {
		if alg != LubyGlauber && alg != LocalMetropolis {
			panic(fmt.Sprintf("chains: %v has no vertex-parallel rounds (only LubyGlauber and LocalMetropolis decompose into barrier-separated phases)", alg))
		}
		s.par = opts.Parallel
		if n := m.G.N(); s.par > n {
			s.par = n
		}
		s.scratch.ensureParallel(m.Q, s.par)
	}
	if alg == LocalMetropolis {
		// The specialized coloring round produces identical trajectories
		// (TestColoringFastPathMatchesGeneral) without touching floating
		// point on the hot path.
		s.coloring = m.IsColoringModel()
	}
	if alg == ChromaticGlauber {
		colors, used := m.G.GreedyColoring()
		s.classes = make([][]int, used)
		for v, c := range colors {
			s.classes[c] = append(s.classes[c], v)
		}
	}
	return s
}

// Round returns the number of steps taken so far.
func (s *Sampler) Round() int { return s.round }

// Reset rewinds the Sampler to round 0 with a new initial configuration
// (copied) and seed, reusing the existing state and scratch buffers. The
// subsequent trajectory is identical to that of a freshly constructed
// Sampler with the same arguments.
func (s *Sampler) Reset(init []int, seed uint64) {
	if len(init) != len(s.X) {
		panic("chains: initial configuration has wrong length")
	}
	copy(s.X, init)
	s.seed = seed
	s.round = 0
}

// Step advances the chain by one step (one single-site update for Glauber
// and SystematicScan; one full parallel round otherwise).
func (s *Sampler) Step() {
	if s.Obs != nil {
		t0 := time.Now()
		round := s.round
		s.step()
		s.Obs.RoundDone(0, round, time.Since(t0).Nanoseconds(), 0, -1)
		return
	}
	s.step()
}

func (s *Sampler) step() {
	switch s.Alg {
	case Glauber:
		GlauberStep(s.M, s.X, s.seed, s.round, s.scratch)
	case LubyGlauber:
		if s.par > 1 {
			lubyGlauberRoundParallel(s.M, s.X, s.seed, s.round, s.scratch, s.par)
		} else {
			LubyGlauberRound(s.M, s.X, s.seed, s.round, s.scratch)
		}
	case LocalMetropolis:
		switch {
		case s.par > 1 && s.coloring:
			coloringLocalMetropolisRoundParallel(s.M, s.X, s.seed, s.round, s.Opts.DropRule3, s.scratch, s.par)
		case s.par > 1:
			localMetropolisRoundParallel(s.M, s.X, s.seed, s.round, s.Opts.DropRule3, s.scratch, s.par)
		case s.coloring:
			ColoringLocalMetropolisRound(s.M, s.X, s.seed, s.round, s.Opts.DropRule3, s.scratch)
		default:
			LocalMetropolisRound(s.M, s.X, s.seed, s.round, s.Opts.DropRule3, s.scratch)
		}
	case SystematicScan:
		scanStep(s.M, s.X, s.seed, s.round, s.scratch)
	case ChromaticGlauber:
		chromaticRound(s.M, s.X, s.seed, s.round, s.classes, s.scratch)
	default:
		panic("chains: unknown algorithm")
	}
	s.round++
}

// Run advances the chain by t steps.
func (s *Sampler) Run(t int) {
	for i := 0; i < t; i++ {
		if s.Abort != nil && s.Abort.Load() {
			return
		}
		s.Step()
	}
}

// GlauberStep performs one single-site heat-bath update: pick a uniform
// vertex, resample it from the conditional marginal (2). If the marginal is
// undefined at the current configuration the vertex keeps its value (the §3
// assumption rules this out for the models we run).
func GlauberStep(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	n := m.G.N()
	v := int(rng.PRF(seed, TagPick, uint64(round)) % uint64(n))
	u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
	if c, ok := m.ResampleU(v, x, sc.marg, u); ok {
		x[v] = c
	}
}

// scanStep resamples vertex (round mod n) — systematic scan.
func scanStep(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	v := round % m.G.N()
	u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
	if c, ok := m.ResampleU(v, x, sc.marg, u); ok {
		x[v] = c
	}
}

// chromaticRound resamples every vertex of one greedy color class in
// parallel (the [28] chromatic scheduler). Vertices in a class are pairwise
// non-adjacent, so in-place updates are exact.
func chromaticRound(m *mrf.MRF, x []int, seed uint64, round int, classes [][]int, sc *Scratch) {
	class := classes[round%len(classes)]
	ku := rng.Key(seed, TagUpdate, uint64(round))
	for _, v := range class {
		if c, ok := m.ResampleU(v, x, sc.marg, ku.Float64(uint64(v))); ok {
			x[v] = c
		}
	}
}

// BetaLocalMax reports whether beta[v] strictly exceeds beta[u] for every u
// in nbr — the Luby-step membership test of Algorithm 1, lines 3–4. It is
// THE β-max loop: LubyStep, LubyGlauberRound, the vertex-parallel resample
// phase, and the sharded runtime (internal/cluster, over shard-local
// indices) all decide membership through this one function, so the strict-
// inequality tie-break can never drift between runtimes.
func BetaLocalMax(beta []float64, v int, nbr []int32) bool {
	bv := beta[v]
	for _, u := range nbr {
		if beta[u] >= bv {
			return false
		}
	}
	return true
}

// LubyStep computes the Luby-step random independent set of round `round`:
// β_v = PRF(seed, TagBeta, v, round) and v ∈ I iff β_v strictly exceeds
// every neighbor's β (Algorithm 1, lines 3–4). It fills sc.beta and returns
// the indicator in the provided slice (allocated if nil).
func LubyStep(g *graph.Graph, seed uint64, round int, sc *Scratch, inI []bool) []bool {
	n := g.N()
	if inI == nil {
		inI = make([]bool, n)
	}
	rng.Key(seed, TagBeta, uint64(round)).FillFloat64s(sc.beta[:n], 0)
	rowPtr, nbr, _ := g.CSR()
	for v := 0; v < n; v++ {
		inI[v] = BetaLocalMax(sc.beta, v, nbr[rowPtr[v]:rowPtr[v+1]])
	}
	return inI
}

// LubyGlauberRound performs one round of Algorithm 1: select the Luby-step
// independent set I, then resample every v ∈ I from its conditional
// marginal, in parallel. Because I is independent, no resampled vertex
// reads another resampled vertex, so sequential in-place iteration realizes
// the parallel update exactly. The β priorities are streamed through one
// partial PRF key and membership + resampling walk the flat CSR adjacency.
func LubyGlauberRound(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	g := m.G
	n := g.N()
	rng.Key(seed, TagBeta, uint64(round)).FillFloat64s(sc.beta[:n], 0)
	ku := rng.Key(seed, TagUpdate, uint64(round))
	rowPtr, nbr, _ := g.CSR()
	beta := sc.beta
	for v := 0; v < n; v++ {
		if !BetaLocalMax(beta, v, nbr[rowPtr[v]:rowPtr[v+1]]) {
			continue
		}
		if c, ok := m.ResampleU(v, x, sc.marg, ku.Float64(uint64(v))); ok {
			x[v] = c
		}
	}
}

// LocalMetropolisRound performs one round of Algorithm 2:
//
//  1. every vertex v proposes σ_v with probability ∝ b_v(σ_v);
//  2. every edge e = uv passes its check independently with probability
//     Ã_e(σ_u,σ_v)·Ã_e(X_u,σ_v)·Ã_e(σ_u,X_v), using the shared coin
//     PRF(seed, TagCoin, e, round);
//  3. v accepts σ_v iff all incident edges passed.
//
// With dropRule3 the factor Ã_e(σ_u, X_v) is omitted (E4 ablation; the
// resulting chain is biased).
func LocalMetropolisRound(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch) {
	n := m.G.N()
	ku := rng.Key(seed, TagUpdate, uint64(round))
	for v := 0; v < n; v++ {
		sc.prop[v] = m.ProposeU(v, ku.Float64(uint64(v)))
	}
	metropolisEdgeFilter(m, x, sc.prop, sc.pass, seed, round, dropRule3, 0, m.G.M())
	applyPassAccept(m.G, x, sc.prop, sc.pass, 0, n)
}

// metropolisEdgeFilter runs the Algorithm 2 edge checks for edge IDs
// [lo, hi): pass[id] = coin_id < Ã-product, with the shared coin streamed
// through the round's TagCoin partial key. The sequential kernel passes the
// full range; the vertex-parallel mode slices it.
func metropolisEdgeFilter(m *mrf.MRF, x, prop []int, pass []bool, seed uint64, round int, dropRule3 bool, lo, hi int) {
	kc := rng.Key(seed, TagCoin, uint64(round))
	edges := m.G.Edges()
	for id := lo; id < hi; id++ {
		e := &edges[id]
		p := EdgePassProb(m, id, x[e.U], x[e.V], prop[e.U], prop[e.V], dropRule3)
		pass[id] = kc.Float64(uint64(id)) < p
	}
}

// applyPassAccept applies the LocalMetropolis acceptance rule over vertices
// [lo, hi): v adopts its proposal iff every incident edge passed. It walks
// the flat CSR incidence array directly.
func applyPassAccept(g *graph.Graph, x, prop []int, pass []bool, lo, hi int) {
	rowPtr, _, inc := g.CSR()
	for v := lo; v < hi; v++ {
		ok := true
		for t, end := rowPtr[v], rowPtr[v+1]; t < end; t++ {
			if !pass[inc[t]] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = prop[v]
		}
	}
}

// EdgePassProb returns the LocalMetropolis filter probability of edge id
// given current spins (xu, xv) and proposals (su, sv) — the product of
// Algorithm 2's three factors (two with dropRule3). The expression is not
// symmetric in the endpoints: callers must pass values in the edge's
// stored U/V orientation. Exported so the sharded runtime
// (internal/cluster) evaluates exactly this expression, in this
// multiplication order, for its bit-identity contract.
func EdgePassProb(m *mrf.MRF, id, xu, xv, su, sv int, dropRule3 bool) float64 {
	a := m.NormalizedEdge(id)
	p := a.At(su, sv) * a.At(xu, sv)
	if !dropRule3 {
		p *= a.At(su, xv)
	}
	return p
}

// ColoringLocalMetropolisRound is the specialized proper-q-coloring fast
// path of Algorithm 2 (§4.2): uniform proposals and the three deterministic
// filter rules
//
//	reject at v if ∃u∈Γ(v): c_v = X_u  (rule 1),
//	                        c_v = c_u  (rule 2),
//	                        X_v = c_u  (rule 3).
//
// It consumes the PRF keys in exactly the same pattern as
// LocalMetropolisRound, so both functions produce identical trajectories on
// coloring models (tested), but this one does no floating-point activity
// arithmetic on the hot path. Strictly, int(u·q) can disagree with
// CategoricalU over q equal weights on a boundary set of u values of
// measure ~2^−53 per draw — never observed, but when exact fast/general
// agreement matters, compare like against like. The engine's determinism
// contracts are unaffected: Sampler.Step and the distributed protocol
// both take this path for coloring models.
func ColoringLocalMetropolisRound(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch) {
	g := m.G
	n := g.N()
	coloringPropose(m, sc.prop, seed, round, 0, n)
	if dropRule3 {
		// Rule sets without rule 3 are asymmetric in the edge orientation
		// (only c_v vs X_{e.U} is checked), so the ablation keeps the
		// per-edge pass array. The default path below is symmetric and
		// fuses the filter into a per-vertex sweep instead.
		coloringEdgeFilter(g, x, sc.prop, sc.pass, true, 0, g.M())
		applyPassAccept(g, x, sc.prop, sc.pass, 0, n)
		return
	}
	rowPtr, nbr, _ := g.CSR()
	for v := 0; v < n; v++ {
		sc.accept[v] = coloringVertexOK(x, sc.prop, v, nbr[rowPtr[v]:rowPtr[v+1]])
	}
	for v := 0; v < n; v++ {
		if sc.accept[v] {
			x[v] = sc.prop[v]
		}
	}
}

// coloringPropose draws the §4.2 uniform color proposals for vertices
// [lo, hi) through the round's TagUpdate partial key.
func coloringPropose(m *mrf.MRF, prop []int, seed uint64, round int, lo, hi int) {
	ku := rng.Key(seed, TagUpdate, uint64(round))
	qf := float64(m.Q)
	for v := lo; v < hi; v++ {
		prop[v] = int(ku.Float64(uint64(v)) * qf)
	}
}

// coloringVertexOK evaluates the three §4.2 filter rules for vertex v from
// its own side of each incident edge. With all three rules the per-edge
// failure condition c_u = c_v ∨ c_v = X_u ∨ c_u = X_v is symmetric in the
// endpoints, so "every incident edge passes" equals "no neighbor triggers a
// rule against v" — which lets the round skip the per-edge pass array (and
// its edge-endpoint loads) entirely. Each cut check is evaluated from both
// endpoints, exactly like the sharded runtime's redundant cut-edge
// evaluation; the decisions agree because the inputs are identical.
func coloringVertexOK(x, prop []int, v int, nbr []int32) bool {
	pv, xv := prop[v], x[v]
	for _, u := range nbr {
		pu := prop[u]
		if pv == pu || pv == x[u] || pu == xv {
			return false
		}
	}
	return true
}

// coloringEdgeFilter runs the §4.2 deterministic rules for edge IDs
// [lo, hi) into pass, in the edge's stored orientation (required when
// dropRule3 makes the rule set asymmetric).
func coloringEdgeFilter(g *graph.Graph, x, prop []int, pass []bool, dropRule3 bool, lo, hi int) {
	edges := g.Edges()
	for id := lo; id < hi; id++ {
		e := &edges[id]
		cu, cv := prop[e.U], prop[e.V]
		ok := cu != cv && cv != x[e.U]
		if !dropRule3 {
			ok = ok && cu != x[e.V]
		}
		pass[id] = ok
	}
}

// GreedyFeasible constructs a feasible starting configuration by assigning
// vertices in index order, each to the value maximizing its conditional
// activity given already-assigned neighbors. For colorings with q ≥ Δ+1
// this is greedy coloring; for hardcore it returns the empty set. Returns
// an error if some vertex has no positive-activity value.
func GreedyFeasible(m *mrf.MRF) ([]int, error) {
	n := m.G.N()
	x := make([]int, n)
	assigned := make([]bool, n)
	for v := 0; v < n; v++ {
		bestC, bestW := -1, 0.0
		for c := 0; c < m.Q; c++ {
			w := m.VertexB[v][c]
			if w == 0 {
				continue
			}
			adj, inc := m.G.Adj(v), m.G.Inc(v)
			for i, u := range adj {
				if assigned[u] {
					w *= m.EdgeA[inc[i]].At(c, x[u])
					if w == 0 {
						break
					}
				}
			}
			if w > bestW {
				bestW, bestC = w, c
			}
		}
		if bestC < 0 {
			return nil, fmt.Errorf("chains: greedy construction stuck at vertex %d", v)
		}
		x[v] = bestC
		assigned[v] = true
	}
	return x, nil
}
