// Vertex-parallel round kernels: the paper's LubyGlauber and LocalMetropolis
// rounds are embarrassingly vertex/edge-parallel (§4 — every vertex acts on
// round-local information only), so one chain's round splits across
// goroutines without the sharded runtime's partition/exchange machinery.
//
// Each round runs as barrier-separated phases (propose / edge-filter /
// accept for LocalMetropolis, β-fill / resample for LubyGlauber), each phase
// fanning one contiguous CSR range per worker. Bit-identity with the
// sequential kernels holds at every worker count because
//
//   - every variate is PRF-keyed by global vertex/edge ID and round, never
//     by visitation order, so splitting a range cannot shift randomness;
//   - a phase reads only state frozen before it started (the previous
//     phase's barrier is a happens-before edge) and writes only its own
//     indices, so no worker observes a mid-phase value;
//   - the one in-place phase — LubyGlauber's resample — only writes members
//     of the Luby independent set, whose neighbors are never resampled in
//     the same round, so its reads are frozen too.
//
// The range split itself never influences results; it only chooses which
// worker computes an index.
package chains

import (
	"sync"

	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// parallelFor runs fn(w, lo, hi) over a balanced partition of [0, n) into
// contiguous blocks, one goroutine per block, and waits for all of them —
// the phase barrier of the parallel round kernels.
func parallelFor(n, workers int, fn func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// lubyGlauberRoundParallel is LubyGlauberRound with both phases fanned over
// workers: β-fill (disjoint writes to sc.beta), then membership + resample.
// The resample phase gives each worker a private marginal buffer; its
// in-place x writes are race-free because the Luby step is an independent
// set (see the package comment above).
func lubyGlauberRoundParallel(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch, workers int) {
	n := m.G.N()
	beta := sc.beta[:n]
	kb := rng.Key(seed, TagBeta, uint64(round))
	parallelFor(n, workers, func(_, lo, hi int) {
		kb.FillFloat64s(beta[lo:hi], uint64(lo))
	})
	ku := rng.Key(seed, TagUpdate, uint64(round))
	rowPtr, nbr, _ := m.G.CSR()
	parallelFor(n, workers, func(w, lo, hi int) {
		marg := sc.margs[w]
		for v := lo; v < hi; v++ {
			if !BetaLocalMax(beta, v, nbr[rowPtr[v]:rowPtr[v+1]]) {
				continue
			}
			if c, ok := m.ResampleU(v, x, marg, ku.Float64(uint64(v))); ok {
				x[v] = c
			}
		}
	})
}

// localMetropolisRoundParallel is LocalMetropolisRound with its three phases
// fanned over workers: propose over vertex ranges, edge-filter over edge-ID
// ranges, accept over vertex ranges.
func localMetropolisRoundParallel(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch, workers int) {
	g := m.G
	n := g.N()
	ku := rng.Key(seed, TagUpdate, uint64(round))
	parallelFor(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			sc.prop[v] = m.ProposeU(v, ku.Float64(uint64(v)))
		}
	})
	parallelFor(g.M(), workers, func(_, lo, hi int) {
		metropolisEdgeFilter(m, x, sc.prop, sc.pass, seed, round, dropRule3, lo, hi)
	})
	parallelFor(n, workers, func(_, lo, hi int) {
		applyPassAccept(g, x, sc.prop, sc.pass, lo, hi)
	})
}

// coloringLocalMetropolisRoundParallel is ColoringLocalMetropolisRound with
// its phases fanned over workers. The default three-rule path checks
// acceptance per vertex against the frozen pre-round x, then applies in a
// separate phase; the dropRule3 ablation keeps the orientation-aware
// per-edge filter.
func coloringLocalMetropolisRoundParallel(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch, workers int) {
	g := m.G
	n := g.N()
	parallelFor(n, workers, func(_, lo, hi int) {
		coloringPropose(m, sc.prop, seed, round, lo, hi)
	})
	if dropRule3 {
		parallelFor(g.M(), workers, func(_, lo, hi int) {
			coloringEdgeFilter(g, x, sc.prop, sc.pass, true, lo, hi)
		})
		parallelFor(n, workers, func(_, lo, hi int) {
			applyPassAccept(g, x, sc.prop, sc.pass, lo, hi)
		})
		return
	}
	rowPtr, nbr, _ := g.CSR()
	parallelFor(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			sc.accept[v] = coloringVertexOK(x, sc.prop, v, nbr[rowPtr[v]:rowPtr[v+1]])
		}
	})
	parallelFor(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if sc.accept[v] {
				x[v] = sc.prop[v]
			}
		}
	})
}
