package chains

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// soaTestCases spans every SoA kernel branch: Glauber, LubyGlauber, the
// symmetric coloring LocalMetropolis fast path, its dropRule3 edge-mask
// variant, and the general (non-coloring) LocalMetropolis filter.
func soaTestCases() []struct {
	name string
	m    *mrf.MRF
	alg  Algorithm
	opts Options
} {
	g := graph.Grid(5, 6)
	return []struct {
		name string
		m    *mrf.MRF
		alg  Algorithm
		opts Options
	}{
		{"glauber-coloring", mrf.Coloring(g, 15), Glauber, Options{}},
		{"lubyglauber-coloring", mrf.Coloring(g, 9), LubyGlauber, Options{}},
		{"lubyglauber-hardcore", mrf.Hardcore(g, 1.1), LubyGlauber, Options{}},
		{"localmetropolis-coloring", mrf.Coloring(g, 15), LocalMetropolis, Options{}},
		{"localmetropolis-coloring-droprule3", mrf.Coloring(g, 15), LocalMetropolis, Options{DropRule3: true}},
		{"localmetropolis-ising", mrf.Ising(g, 1.1, 0.5), LocalMetropolis, Options{}},
	}
}

// TestSoARoundsMatchSequential pins the block engine's determinism
// contract at the kernel level: lane i of an SoA block seeded
// {s_0..s_{w-1}} reproduces the per-chain Sampler at seed s_i
// bit-for-bit, at every tested width (including widths that are not
// powers of two and a full 64-lane block on the widest case).
func TestSoARoundsMatchSequential(t *testing.T) {
	const rounds = 25
	for _, tc := range soaTestCases() {
		t.Run(tc.name, func(t *testing.T) {
			init, err := GreedyFeasible(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			widths := []int{1, 3, 8, 33}
			if tc.name == "lubyglauber-coloring" {
				widths = append(widths, 64)
			}
			for _, w := range widths {
				seeds := make([]uint64, w)
				for i := range seeds {
					seeds[i] = rng.PRF(1234, uint64(i))
				}
				blk := NewSoABlock(tc.m, tc.alg, tc.opts, w)
				blk.Reset(init, seeds)
				blk.Run(rounds)
				got := make([][]int, w)
				for i := range got {
					got[i] = make([]int, tc.m.G.N())
				}
				blk.Scatter(got)
				for i, seed := range seeds {
					ref := NewSampler(tc.m, init, seed, tc.alg, tc.opts)
					ref.Run(rounds)
					for v := range ref.X {
						if got[i][v] != ref.X[v] {
							t.Fatalf("w=%d lane=%d: diverges from per-chain sampler at vertex %d (round budget %d)", w, i, v, rounds)
						}
					}
				}
			}
		})
	}
}

// TestSoABlockReuseAcrossWidths: one block serves successive runs at any
// width up to its construction width, with no state leaking between runs.
func TestSoABlockReuseAcrossWidths(t *testing.T) {
	m := mrf.Coloring(graph.Grid(4, 4), 9)
	init, _ := GreedyFeasible(m)
	blk := NewSoABlock(m, LubyGlauber, Options{}, 16)
	for _, w := range []int{16, 5, 1, 12} {
		seeds := make([]uint64, w)
		for i := range seeds {
			seeds[i] = rng.PRF(7, uint64(w), uint64(i))
		}
		blk.Reset(init, seeds)
		blk.Run(10)
		got := make([][]int, w)
		for i := range got {
			got[i] = make([]int, m.G.N())
		}
		blk.Scatter(got)
		for i, seed := range seeds {
			ref := NewSampler(m, init, seed, LubyGlauber, Options{})
			ref.Run(10)
			for v := range ref.X {
				if got[i][v] != ref.X[v] {
					t.Fatalf("reused block at w=%d lane=%d diverges at vertex %d", w, i, v)
				}
			}
		}
	}
}

// TestSoABlockStepAllocFree gates the block hot path at zero allocations
// per round — bare and instrumented (the alloc-gate satellite of the SoA
// engine).
func TestSoABlockStepAllocFree(t *testing.T) {
	for _, tc := range soaTestCases() {
		t.Run(tc.name, func(t *testing.T) {
			init, err := GreedyFeasible(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			seeds := make([]uint64, 8)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			blk := NewSoABlock(tc.m, tc.alg, tc.opts, 8)
			blk.Reset(init, seeds)
			if n := testing.AllocsPerRun(20, func() { blk.Step() }); n != 0 {
				t.Fatalf("bare SoA Step allocates %v/round, want 0", n)
			}
			obs := &countingObserver{}
			blk.Obs = obs
			if n := testing.AllocsPerRun(20, func() { blk.Step() }); n != 0 {
				t.Fatalf("instrumented SoA Step allocates %v/round, want 0", n)
			}
			if obs.rounds == 0 {
				t.Fatal("observer saw no rounds")
			}
		})
	}
}

// TestSoABlockPanics: construction and Reset reject out-of-range widths
// and unsupported algorithms.
func TestSoABlockPanics(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(6), 4)
	init, _ := GreedyFeasible(m)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("width 0", func() { NewSoABlock(m, LubyGlauber, Options{}, 0) })
	expectPanic("width 65", func() { NewSoABlock(m, LubyGlauber, Options{}, 65) })
	expectPanic("scan", func() { NewSoABlock(m, SystematicScan, Options{}, 8) })
	blk := NewSoABlock(m, LubyGlauber, Options{}, 8)
	expectPanic("too many seeds", func() { blk.Reset(init, make([]uint64, 9)) })
	expectPanic("no seeds", func() { blk.Reset(init, nil) })
	expectPanic("bad init", func() { blk.Reset(init[:2], make([]uint64, 4)) })
}
