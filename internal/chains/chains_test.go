package chains

import (
	"math"
	"testing"

	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

func TestGreedyFeasible(t *testing.T) {
	cases := []struct {
		name string
		m    *mrf.MRF
	}{
		{"coloring", mrf.Coloring(graph.Cycle(7), 4)},
		{"hardcore", mrf.Hardcore(graph.Grid(3, 3), 1.5)},
		{"ising", mrf.Ising(graph.Path(5), 2, 1)},
		{"vertexcover", mrf.VertexCover(graph.Cycle(5))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, err := GreedyFeasible(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if !tc.m.Feasible(x) {
				t.Fatalf("greedy configuration infeasible: %v", x)
			}
		})
	}
	// Hardcore greedy prefers occupation when λ > 1 but must stay feasible.
	m := mrf.Hardcore(graph.Cycle(6), 3)
	x, err := GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	if !m.G.IsIndependentSet(x) {
		t.Fatal("hardcore greedy produced dependent set")
	}
}

func TestGreedyFeasibleFailure(t *testing.T) {
	// q = 2 coloring of a triangle is impossible.
	m := mrf.Coloring(graph.Cycle(3), 2)
	if _, err := GreedyFeasible(m); err == nil {
		t.Fatal("impossible model did not error")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	m := mrf.Coloring(graph.Grid(4, 4), 5)
	init, _ := GreedyFeasible(m)
	for _, alg := range []Algorithm{Glauber, LubyGlauber, LocalMetropolis, SystematicScan, ChromaticGlauber} {
		a := NewSampler(m, init, 99, alg, Options{})
		b := NewSampler(m, init, 99, alg, Options{})
		a.Run(50)
		b.Run(50)
		for v := range a.X {
			if a.X[v] != b.X[v] {
				t.Fatalf("%v: trajectories diverged at vertex %d", alg, v)
			}
		}
		c := NewSampler(m, init, 100, alg, Options{})
		c.Run(50)
		same := true
		for v := range a.X {
			if a.X[v] != c.X[v] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical states (suspicious)", alg)
		}
	}
}

func TestFeasibilityAbsorbing(t *testing.T) {
	// Once feasible, every chain stays feasible (the paper's absorption
	// argument in Prop 3.1 / Thm 4.1).
	models := []struct {
		name string
		m    *mrf.MRF
	}{
		{"coloring", mrf.Coloring(graph.Grid(3, 4), 5)},
		{"hardcore", mrf.Hardcore(graph.Cycle(8), 1.2)},
	}
	for _, tc := range models {
		init, err := GreedyFeasible(tc.m)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{Glauber, LubyGlauber, LocalMetropolis, SystematicScan, ChromaticGlauber} {
			s := NewSampler(tc.m, init, 7, alg, Options{})
			for i := 0; i < 200; i++ {
				s.Step()
				if !tc.m.Feasible(s.X) {
					t.Fatalf("%s/%v: infeasible after %d steps", tc.name, alg, i+1)
				}
			}
		}
	}
}

func TestAbsorptionFromInfeasible(t *testing.T) {
	// Starting from an infeasible all-zeros coloring with q >= Δ+2, both
	// parallel chains must reach feasibility (§3 and §4 absorption).
	m := mrf.Coloring(graph.Cycle(6), 4)
	init := make([]int, 6) // all color 0: infeasible
	for _, alg := range []Algorithm{LubyGlauber, LocalMetropolis} {
		s := NewSampler(m, init, 3, alg, Options{})
		feasibleAt := -1
		for i := 0; i < 500; i++ {
			s.Step()
			if m.Feasible(s.X) {
				feasibleAt = i
				break
			}
		}
		if feasibleAt < 0 {
			t.Fatalf("%v: never absorbed into feasible states", alg)
		}
	}
}

func TestLubyStepIndependence(t *testing.T) {
	g := graph.Grid(5, 5)
	sc := NewScratch(mrf.Coloring(g, 6))
	inI := make([]bool, g.N())
	for round := 0; round < 100; round++ {
		LubyStep(g, 42, round, sc, inI)
		sigma := make([]int, g.N())
		count := 0
		for v, in := range inI {
			if in {
				sigma[v] = 1
				count++
			}
		}
		if !g.IsIndependentSet(sigma) {
			t.Fatalf("Luby step round %d produced dependent set", round)
		}
		if count == 0 {
			t.Fatalf("Luby step round %d selected nobody (the global max always joins)", round)
		}
	}
}

func TestLubyGlauberOnlyUpdatesIndependentSet(t *testing.T) {
	m := mrf.Coloring(graph.Grid(4, 4), 6)
	init, _ := GreedyFeasible(m)
	x := append([]int(nil), init...)
	sc := NewScratch(m)
	prev := make([]int, len(x))
	for round := 0; round < 50; round++ {
		copy(prev, x)
		LubyGlauberRound(m, x, 5, round, sc)
		changed := make([]int, len(x))
		for v := range x {
			if x[v] != prev[v] {
				changed[v] = 1
			}
		}
		if !m.G.IsIndependentSet(changed) {
			t.Fatalf("round %d changed a dependent set of vertices", round)
		}
	}
}

func TestColoringFastPathMatchesGeneral(t *testing.T) {
	// The specialized coloring round must equal the general-MRF round
	// trajectory bit-for-bit (same PRF keys).
	r := rng.New(31)
	for trial := 0; trial < 5; trial++ {
		g := graph.Gnp(12, 0.3, r)
		q := g.MaxDeg() + 3
		m := mrf.Coloring(g, q)
		init, err := GreedyFeasible(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, drop := range []bool{false, true} {
			xg := append([]int(nil), init...)
			xc := append([]int(nil), init...)
			scg, scc := NewScratch(m), NewScratch(m)
			for round := 0; round < 60; round++ {
				LocalMetropolisRound(m, xg, 77, round, drop, scg)
				ColoringLocalMetropolisRound(m, xc, 77, round, drop, scc)
				for v := range xg {
					if xg[v] != xc[v] {
						t.Fatalf("trial %d drop=%v: fast path diverged at round %d vertex %d", trial, drop, round, v)
					}
				}
			}
		}
	}
}

// empiricalStepDist runs many independent one-step transitions from x0 with
// different seeds and returns the empirical distribution over states.
func empiricalStepDist(m *mrf.MRF, x0 []int, step func(x []int, seed uint64), samples int) []float64 {
	states := 1
	for range x0 {
		states *= m.Q
	}
	counts := make([]float64, states)
	x := make([]int, len(x0))
	for s := 0; s < samples; s++ {
		copy(x, x0)
		step(x, uint64(s)+1)
		counts[exact.Index(m.Q, x)]++
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts
}

func TestLubyGlauberStepMatchesExactMatrix(t *testing.T) {
	// The implemented round, averaged over seeds, must match the analytic
	// transition matrix row. This validates the sampler against the same
	// matrix that was proved reversible in internal/exact.
	m := mrf.Coloring(graph.Path(4), 3)
	P, err := exact.LubyGlauberMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	x0 := []int{0, 1, 0, 1}
	sc := NewScratch(m)
	emp := empiricalStepDist(m, x0, func(x []int, seed uint64) {
		LubyGlauberRound(m, x, seed, 0, sc)
	}, 200000)
	row := P.Row(exact.Index(m.Q, x0))
	if tv := exact.TV(emp, row); tv > 0.01 {
		t.Fatalf("empirical one-step TV from exact row: %v", tv)
	}
}

func TestLocalMetropolisStepMatchesExactMatrix(t *testing.T) {
	m := mrf.Coloring(graph.Path(3), 4)
	for _, drop := range []bool{false, true} {
		P, err := exact.LocalMetropolisMatrix(m, drop, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		x0 := []int{0, 1, 2}
		sc := NewScratch(m)
		emp := empiricalStepDist(m, x0, func(x []int, seed uint64) {
			LocalMetropolisRound(m, x, seed, 0, drop, sc)
		}, 200000)
		row := P.Row(exact.Index(m.Q, x0))
		if tv := exact.TV(emp, row); tv > 0.01 {
			t.Fatalf("drop=%v: empirical one-step TV from exact row: %v", drop, tv)
		}
	}
}

func TestGlauberStepMatchesExactMatrix(t *testing.T) {
	m := mrf.Hardcore(graph.Cycle(4), 1.5)
	P, err := exact.GlauberMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	x0 := []int{1, 0, 1, 0}
	sc := NewScratch(m)
	emp := empiricalStepDist(m, x0, func(x []int, seed uint64) {
		GlauberStep(m, x, seed, 0, sc)
	}, 200000)
	row := P.Row(exact.Index(m.Q, x0))
	if tv := exact.TV(emp, row); tv > 0.01 {
		t.Fatalf("empirical one-step TV from exact row: %v", tv)
	}
}

func TestScanStepMatchesSingleSiteMatrix(t *testing.T) {
	// scanStep at round r resamples vertex r mod n: its empirical one-step
	// law must match the exact single-site matrix at that vertex.
	m := mrf.Ising(graph.Path(3), 1.5, 0.8)
	const v = 1
	P, err := exact.SingleSiteMatrix(m, v, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	x0 := []int{0, 1, 0}
	emp := empiricalStepDist(m, x0, func(x []int, seed uint64) {
		s := NewSampler(m, x, seed, SystematicScan, Options{})
		// Advance the sampler's internal round to v so scanStep hits it.
		s.round = v
		s.Step()
		copy(x, s.X)
	}, 150000)
	row := P.Row(exact.Index(m.Q, x0))
	if tv := exact.TV(emp, row); tv > 0.01 {
		t.Fatalf("scan one-step TV from exact single-site row: %v", tv)
	}
}

// longRunTV runs a chain, collects thinned samples, and compares the
// empirical distribution against exact Gibbs.
func longRunTV(t *testing.T, m *mrf.MRF, alg Algorithm, burn, thin, samples int) float64 {
	t.Helper()
	mu, err := exact.Enumerate(m.G.N(), m.Q, m.Weight, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	init, err := GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m, init, 12345, alg, Options{})
	s.Run(burn)
	counts := make([]float64, len(mu.P))
	for i := 0; i < samples; i++ {
		s.Run(thin)
		counts[exact.Index(m.Q, s.X)]++
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return exact.TV(counts, mu.P)
}

func TestLongRunDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run distribution test")
	}
	m := mrf.Coloring(graph.Cycle(4), 3) // 18 feasible states
	for _, alg := range []Algorithm{Glauber, LubyGlauber, LocalMetropolis, SystematicScan, ChromaticGlauber} {
		tv := longRunTV(t, m, alg, 2000, 12, 60000)
		// Statistical noise for 18 states at 60k samples is about 0.01.
		if tv > 0.04 {
			t.Errorf("%v: long-run TV from Gibbs = %v", alg, tv)
		}
	}
}

func TestRule3AblationBiasEmpirical(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run distribution test")
	}
	// E4 companion: with rule 3 dropped the long-run distribution is
	// measurably wrong even though the chain still moves.
	m := mrf.Coloring(graph.Path(3), 4)
	mu, _ := exact.Enumerate(3, 4, m.Weight, 1<<20)
	P, _ := exact.LocalMetropolisMatrix(m, true, 1<<20)
	biased := P.Stationary(200000, 1e-14)
	wantTV := exact.TV(biased, mu.P)

	init, _ := GreedyFeasible(m)
	s := NewSampler(m, init, 5, LocalMetropolis, Options{DropRule3: true})
	s.Run(2000)
	counts := make([]float64, len(mu.P))
	const samples = 60000
	for i := 0; i < samples; i++ {
		s.Run(8)
		counts[exact.Index(m.Q, s.X)]++
	}
	for i := range counts {
		counts[i] /= samples
	}
	gotTV := exact.TV(counts, mu.P)
	if math.Abs(gotTV-wantTV) > 0.03 {
		t.Fatalf("empirical ablation bias %v differs from analytic %v", gotTV, wantTV)
	}
	if gotTV < 1e-3 {
		t.Fatal("ablated chain looks unbiased; rule 3 should matter")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Glauber:          "Glauber",
		LubyGlauber:      "LubyGlauber",
		LocalMetropolis:  "LocalMetropolis",
		SystematicScan:   "SystematicScan",
		ChromaticGlauber: "ChromaticGlauber",
		Algorithm(99):    "Algorithm(99)",
	}
	for alg, want := range names {
		if alg.String() != want {
			t.Errorf("String() = %q, want %q", alg.String(), want)
		}
	}
}

func TestSamplerPanicsOnBadInit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length init did not panic")
		}
	}()
	m := mrf.Coloring(graph.Path(3), 3)
	NewSampler(m, []int{0}, 1, Glauber, Options{})
}
