package chains

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// countingObserver is a minimal allocation-free RoundObserver.
type countingObserver struct {
	rounds    int
	computeNS int64
}

func (o *countingObserver) RoundDone(shard, round int, computeNS, barrierNS int64, flips int) {
	o.rounds++
	o.computeNS += computeNS
}

// TestSamplerObserverStepAllocFree gates the centralized hot path: an
// instrumented Step (observer attached) must allocate exactly as much as
// a bare one — nothing.
func TestSamplerObserverStepAllocFree(t *testing.T) {
	g := graph.Grid(16, 16)
	m := mrf.Coloring(g, 3*g.MaxDeg()+1)
	init, err := GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{LubyGlauber, LocalMetropolis} {
		for _, instrumented := range []bool{false, true} {
			s := NewSampler(m, init, 1, alg, Options{})
			var o *countingObserver
			if instrumented {
				o = &countingObserver{}
				s.Obs = o
			}
			if n := testing.AllocsPerRun(20, func() { s.Step() }); n != 0 {
				t.Fatalf("%v instrumented=%v: %v allocs/step, want 0", alg, instrumented, n)
			}
			if instrumented && o.rounds != s.Round() {
				t.Fatalf("%v: observer saw %d rounds, sampler ran %d", alg, o.rounds, s.Round())
			}
		}
	}
}

// TestSamplerObserverDoesNotPerturb pins the determinism invariant: an
// attached observer must not change the trajectory.
func TestSamplerObserverDoesNotPerturb(t *testing.T) {
	g := graph.Grid(8, 8)
	m := mrf.Ising(g, 0.3, 0.9)
	init := make([]int, g.N())
	const rounds = 12

	bare := NewSampler(m, init, 42, LocalMetropolis, Options{})
	bare.Run(rounds)

	o := &countingObserver{}
	inst := NewSampler(m, init, 42, LocalMetropolis, Options{})
	inst.Obs = o
	inst.Run(rounds)

	for v := range bare.X {
		if bare.X[v] != inst.X[v] {
			t.Fatalf("observer perturbed trajectory at vertex %d", v)
		}
	}
	if o.rounds != rounds {
		t.Fatalf("observer saw %d rounds, want %d", o.rounds, rounds)
	}
	if o.computeNS <= 0 {
		t.Fatal("observer recorded no compute time")
	}
}
