package chains

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func benchModel(b *testing.B, q int) (*mrf.MRF, []int, *Scratch) {
	b.Helper()
	g := graph.Torus(32, 32)
	m := mrf.Coloring(g, q)
	init, err := GreedyFeasible(m)
	if err != nil {
		b.Fatal(err)
	}
	return m, init, NewScratch(m)
}

func BenchmarkGlauberStep(b *testing.B) {
	m, x, sc := benchModel(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlauberStep(m, x, 1, i, sc)
	}
}

func BenchmarkLubyGlauberRoundTorus(b *testing.B) {
	m, x, sc := benchModel(b, 12)
	b.ReportMetric(float64(m.G.N()), "vertices")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LubyGlauberRound(m, x, 1, i, sc)
	}
}

func BenchmarkLocalMetropolisRoundTorus(b *testing.B) {
	m, x, sc := benchModel(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalMetropolisRound(m, x, 1, i, false, sc)
	}
}

func BenchmarkColoringFastPathTorus(b *testing.B) {
	m, x, sc := benchModel(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ColoringLocalMetropolisRound(m, x, 1, i, false, sc)
	}
}

func BenchmarkMarginalInto(b *testing.B) {
	m, x, sc := benchModel(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarginalInto(i%m.G.N(), x, sc.marg)
	}
}

func BenchmarkHardcoreLubyGlauber(b *testing.B) {
	g := graph.Torus(32, 32)
	m := mrf.Hardcore(g, 0.7)
	init := make([]int, g.N())
	sc := NewScratch(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LubyGlauberRound(m, init, 1, i, sc)
	}
}
