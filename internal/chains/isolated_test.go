package chains

import (
	"testing"

	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// Graphs with isolated vertices exercise the Δ=0 edges of every code path:
// Luby steps always select isolated vertices (empty neighborhood maxima),
// marginals reduce to the vertex activity, and the LocalMetropolis filter
// trivially accepts.
func TestChainsWithIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1) // vertices 2, 3, 4 isolated
	g := b.Build()
	m := mrf.Hardcore(g, 2.0)
	init := make([]int, 5)
	for _, alg := range []Algorithm{Glauber, LubyGlauber, LocalMetropolis, SystematicScan, ChromaticGlauber} {
		s := NewSampler(m, init, 11, alg, Options{})
		s.Run(300)
		if !m.Feasible(s.X) {
			t.Fatalf("%v: infeasible on graph with isolated vertices", alg)
		}
	}
	// Isolated vertices reach their exact marginal λ/(1+λ) = 2/3 quickly:
	// check the empirical occupation over many runs for LubyGlauber.
	hits, trials := 0, 3000
	for i := 0; i < trials; i++ {
		s := NewSampler(m, init, uint64(i)+1, LubyGlauber, Options{})
		s.Run(20)
		hits += s.X[3]
	}
	p := float64(hits) / float64(trials)
	if p < 0.6 || p > 0.73 {
		t.Fatalf("isolated vertex occupation %v, want ≈ 2/3", p)
	}
	// And the full joint matches exact Gibbs via the transition matrix.
	mu, err := exact.Enumerate(5, 2, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	P, err := exact.LubyGlauberMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.DetailedBalanceErr(mu.P); e > 1e-12 {
		t.Fatalf("detailed balance with isolated vertices violated by %v", e)
	}
}
