package chains

// Golden equivalence tests for the fused round kernels: the pre-refactor
// implementations (per-vertex Adj/Inc slice walks, full PRF calls, per-edge
// pass arrays, linear-scan proposal draws) are kept here verbatim as
// references, and every new kernel — partial-key PRF streaming, fused CSR
// marginals, the symmetric per-vertex coloring filter, and the
// vertex-parallel rounds — must reproduce their trajectories byte for byte.

import (
	"runtime"
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// refLubyGlauberRound is the pre-refactor LubyGlauberRound.
func refLubyGlauberRound(m *mrf.MRF, x []int, seed uint64, round int, sc *Scratch) {
	g := m.G
	n := g.N()
	for v := 0; v < n; v++ {
		sc.beta[v] = rng.PRFFloat64(seed, TagBeta, uint64(v), uint64(round))
	}
	for v := 0; v < n; v++ {
		isMax := true
		for _, u := range g.Adj(v) {
			if sc.beta[u] >= sc.beta[v] {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		if m.MarginalInto(v, x, sc.marg) {
			u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
			x[v] = rng.CategoricalU(sc.marg, u)
		}
	}
}

// refLocalMetropolisRound is the pre-refactor LocalMetropolisRound.
func refLocalMetropolisRound(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch) {
	g := m.G
	n := g.N()
	for v := 0; v < n; v++ {
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		sc.prop[v] = rng.CategoricalU(m.ProposalRow(v), u)
	}
	for id, e := range g.Edges() {
		p := EdgePassProb(m, id, x[e.U], x[e.V], sc.prop[e.U], sc.prop[e.V], dropRule3)
		coin := rng.PRFFloat64(seed, TagCoin, uint64(id), uint64(round))
		sc.pass[id] = coin < p
	}
	for v := 0; v < n; v++ {
		ok := true
		for _, id := range g.Inc(v) {
			if !sc.pass[id] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = sc.prop[v]
		}
	}
}

// refColoringLocalMetropolisRound is the pre-refactor (edge-pass-array)
// ColoringLocalMetropolisRound.
func refColoringLocalMetropolisRound(m *mrf.MRF, x []int, seed uint64, round int, dropRule3 bool, sc *Scratch) {
	g := m.G
	n := g.N()
	q := m.Q
	for v := 0; v < n; v++ {
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		sc.prop[v] = int(u * float64(q))
	}
	for id, e := range g.Edges() {
		cu, cv := sc.prop[e.U], sc.prop[e.V]
		ok := cu != cv && cv != x[e.U]
		if !dropRule3 {
			ok = ok && cu != x[e.V]
		}
		sc.pass[id] = ok
	}
	for v := 0; v < n; v++ {
		ok := true
		for _, id := range g.Inc(v) {
			if !sc.pass[id] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = sc.prop[v]
		}
	}
}

// kernelTestModels returns a diverse model set: 0/1 coloring structure, a
// soft model with nontrivial vertex activities, a multigraph, and a hardcore
// model with genuinely zero activities.
func kernelTestModels(t *testing.T) []*mrf.MRF {
	t.Helper()
	grid := graph.Grid(6, 7)
	var models []*mrf.MRF
	models = append(models, mrf.Coloring(grid, 6))
	models = append(models, mrf.Ising(grid, 0.4, 0.7))
	models = append(models, mrf.Hardcore(grid, 1.3))
	models = append(models, mrf.Potts(graph.Cycle(17), 5, 0.8))
	// Multigraph with parallel edges: edge IDs and slot order matter.
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(i, i+1)
	}
	b.AddEdge(0, 5)
	models = append(models, mrf.Coloring(b.Build(), 7))
	return models
}

func initFor(m *mrf.MRF) []int {
	x, err := GreedyFeasible(m)
	if err != nil {
		panic(err)
	}
	return x
}

func equalTrajectory(t *testing.T, name string, got, want []int, round int) {
	t.Helper()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: round %d vertex %d: got %d, reference %d", name, round, v, got[v], want[v])
		}
	}
}

func TestLubyGlauberRoundMatchesReference(t *testing.T) {
	for mi, m := range kernelTestModels(t) {
		for seed := uint64(1); seed <= 3; seed++ {
			got := initFor(m)
			want := append([]int(nil), got...)
			scGot, scWant := NewScratch(m), NewScratch(m)
			for r := 0; r < 20; r++ {
				LubyGlauberRound(m, got, seed, r, scGot)
				refLubyGlauberRound(m, want, seed, r, scWant)
				equalTrajectory(t, "LubyGlauberRound", got, want, r)
			}
			_ = mi
		}
	}
}

func TestLocalMetropolisRoundMatchesReference(t *testing.T) {
	for _, m := range kernelTestModels(t) {
		for _, drop := range []bool{false, true} {
			for seed := uint64(1); seed <= 3; seed++ {
				got := initFor(m)
				want := append([]int(nil), got...)
				scGot, scWant := NewScratch(m), NewScratch(m)
				for r := 0; r < 20; r++ {
					LocalMetropolisRound(m, got, seed, r, drop, scGot)
					refLocalMetropolisRound(m, want, seed, r, drop, scWant)
					equalTrajectory(t, "LocalMetropolisRound", got, want, r)
				}
			}
		}
	}
}

func TestColoringRoundMatchesReference(t *testing.T) {
	grid := graph.Grid(9, 9)
	multi := func() *graph.Graph {
		b := graph.NewBuilder(8)
		for i := 0; i < 7; i++ {
			b.AddEdge(i, i+1)
			b.AddEdge(i, (i+3)%8)
		}
		return b.Build()
	}()
	for _, g := range []*graph.Graph{grid, multi} {
		m := mrf.Coloring(g, 3*g.MaxDeg()+1)
		for _, drop := range []bool{false, true} {
			for seed := uint64(1); seed <= 5; seed++ {
				got := initFor(m)
				want := append([]int(nil), got...)
				scGot, scWant := NewScratch(m), NewScratch(m)
				for r := 0; r < 30; r++ {
					ColoringLocalMetropolisRound(m, got, seed, r, drop, scGot)
					refColoringLocalMetropolisRound(m, want, seed, r, drop, scWant)
					equalTrajectory(t, "ColoringLocalMetropolisRound", got, want, r)
				}
			}
		}
	}
}

func TestLubyStepMatchesReference(t *testing.T) {
	g := graph.Grid(8, 8)
	sc := NewScratch(mrf.Coloring(g, 5))
	for seed := uint64(1); seed <= 3; seed++ {
		for r := 0; r < 10; r++ {
			inI := LubyStep(g, seed, r, sc, nil)
			for v := 0; v < g.N(); v++ {
				want := true
				bv := rng.PRFFloat64(seed, TagBeta, uint64(v), uint64(r))
				for _, u := range g.Adj(v) {
					if rng.PRFFloat64(seed, TagBeta, uint64(u), uint64(r)) >= bv {
						want = false
						break
					}
				}
				if inI[v] != want {
					t.Fatalf("LubyStep seed %d round %d vertex %d: got %v, reference %v", seed, r, v, inI[v], want)
				}
			}
		}
	}
}

// TestParallelRoundsMatchSequential pins the vertex-parallel mode: for every
// supported algorithm, model shape, and a worker-count sweep (including
// counts exceeding n), the parallel Sampler trajectory equals the sequential
// one byte for byte.
func TestParallelRoundsMatchSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, m := range kernelTestModels(t) {
		for _, alg := range []Algorithm{LubyGlauber, LocalMetropolis} {
			for _, drop := range []bool{false, true} {
				if drop && alg != LocalMetropolis {
					continue
				}
				init := initFor(m)
				seq := NewSampler(m, init, 11, alg, Options{DropRule3: drop})
				seq.Run(15)
				for _, workers := range []int{2, 3, 8, m.G.N() + 7} {
					par := NewSampler(m, init, 11, alg, Options{DropRule3: drop, Parallel: workers})
					par.Run(15)
					for v := range seq.X {
						if par.X[v] != seq.X[v] {
							t.Fatalf("%v drop3=%v workers=%d: vertex %d: parallel %d, sequential %d",
								alg, drop, workers, v, par.X[v], seq.X[v])
						}
					}
				}
			}
		}
	}
}

func TestParallelRejectsSequentialAlgorithms(t *testing.T) {
	m := mrf.Coloring(graph.Grid(3, 3), 5)
	for _, alg := range []Algorithm{Glauber, SystematicScan, ChromaticGlauber} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSampler(%v, Parallel: 4) did not panic", alg)
				}
			}()
			NewSampler(m, make([]int, 9), 1, alg, Options{Parallel: 4})
		}()
	}
}
