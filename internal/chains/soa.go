// Structure-of-arrays multi-chain round kernels: one CSR walk serves a
// block of up to 64 chains.
//
// The per-chain kernels in chains.go advance one chain per call, so a
// k-chain batch re-walks the same adjacency k times per round and re-loads
// every activity pointer once per chain per edge. The SoA block engine
// stores W chains interleaved [vertex][chain] — chain c's value at vertex v
// is x[v*W+c], a flat []int32 lane array — so one pass over the CSR
// evaluates marginals, proposals, and edge filters for all W lanes with
// contiguous loads: the neighbor index, the activity table pointer, and the
// β/state cache lines are fetched once per vertex (or edge) and amortized
// over the whole block. The per-round key schedules are hoisted once per
// block per round through rng.KeysInto.
//
// Determinism is the same contract as every other runtime in this
// repository: lane c of a block seeded {s_0..s_{W-1}} reproduces the
// per-chain Sampler at seed s_c bit-for-bit, at every block width. That
// holds by construction — every variate is PRF(seed_c, tag, id, round),
// keyed by the chain's own seed and a global vertex/edge ID, never by lane
// index or visitation order — and is pinned by TestSoARoundsMatchSequential
// and the engine-level width gates.
package chains

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// MaxBatchWidth is the widest SoA block: lane sets are tracked as uint64
// bitmasks, one bit per chain.
const MaxBatchWidth = 64

// SoABlock advances up to MaxBatchWidth chains of one model in lockstep
// through shared round kernels. A block is reusable: Reset rewinds it to
// round 0 with new lane seeds (and possibly a different lane count ≤ the
// construction width); Run advances all lanes; Scatter copies the lanes
// out. All working buffers are allocated at construction — steady-state
// rounds allocate nothing (alloc-gated, instrumented and bare).
type SoABlock struct {
	M    *mrf.MRF
	Alg  Algorithm
	Opts Options

	// Obs and Abort follow the Sampler contract: Obs (if non-nil) gets one
	// RoundDone per block round — a block round advances all lanes at
	// once — and Abort is polled between rounds by Run.
	Obs   RoundObserver
	Abort *atomic.Bool

	maxW     int
	coloring bool

	w     int      // active lanes this run (1..maxW)
	seeds []uint64 // lane chain-seeds
	round int

	x    []int32 // [n*w] lane state, x[v*w+c]
	prop []int32 // [n*w] lane proposals
	beta []float64
	marg []float64 // one marginal row, reused lane-sequentially per vertex

	kb, ku, kc []rng.RoundKey // hoisted per-lane key schedules

	accept []uint64 // [n] per-vertex lane accept masks
	pass   []uint64 // [m] per-edge lane pass masks
}

// NewSoABlock returns a block for up to maxW chains of model m. Only the
// kernels with marginal/propose/filter rounds batch: Glauber, LubyGlauber,
// and LocalMetropolis (the scan and chromatic baselines stay per-chain).
func NewSoABlock(m *mrf.MRF, alg Algorithm, opts Options, maxW int) *SoABlock {
	if maxW < 1 || maxW > MaxBatchWidth {
		panic(fmt.Sprintf("chains: SoA block width must be in [1,%d], got %d", MaxBatchWidth, maxW))
	}
	if alg != Glauber && alg != LubyGlauber && alg != LocalMetropolis {
		panic(fmt.Sprintf("chains: %v has no SoA batch kernel", alg))
	}
	n := m.G.N()
	b := &SoABlock{
		M:     m,
		Alg:   alg,
		Opts:  opts,
		maxW:  maxW,
		x:     make([]int32, n*maxW),
		beta:  make([]float64, n*maxW),
		marg:  make([]float64, m.Q),
		seeds: make([]uint64, maxW),
		kb:    make([]rng.RoundKey, maxW),
		ku:    make([]rng.RoundKey, maxW),
	}
	if alg == LocalMetropolis {
		b.coloring = m.IsColoringModel()
		b.prop = make([]int32, n*maxW)
		if b.coloring && !opts.DropRule3 {
			// The symmetric three-rule coloring filter fuses into a
			// per-vertex sweep; only the asymmetric ablation and the
			// general filter need per-edge pass masks.
			b.accept = make([]uint64, n)
		} else {
			b.pass = make([]uint64, m.G.M())
			if !b.coloring {
				b.kc = make([]rng.RoundKey, maxW)
			}
		}
	}
	return b
}

// Width returns the lane count of the current run.
func (b *SoABlock) Width() int { return b.w }

// MaxWidth returns the construction width — the widest run the block's
// buffers can serve. The engine's block pool is grow-only on this.
func (b *SoABlock) MaxWidth() int { return b.maxW }

// Round returns the number of rounds taken since Reset.
func (b *SoABlock) Round() int { return b.round }

// Reset rewinds the block to round 0 with len(seeds) active lanes, every
// lane starting from init. len(seeds) must be in [1, maxW]. Lanes are
// packed at stride len(seeds), so a tail block narrower than the
// construction width wastes no bandwidth on dead lanes.
func (b *SoABlock) Reset(init []int, seeds []uint64) {
	n := b.M.G.N()
	if len(init) != n {
		panic("chains: initial configuration has wrong length")
	}
	if len(seeds) < 1 || len(seeds) > b.maxW {
		panic(fmt.Sprintf("chains: SoA lane count must be in [1,%d], got %d", b.maxW, len(seeds)))
	}
	w := len(seeds)
	b.w = w
	copy(b.seeds[:w], seeds)
	b.round = 0
	x := b.x
	for v := 0; v < n; v++ {
		xv := int32(init[v])
		row := x[v*w : v*w+w]
		for c := range row {
			row[c] = xv
		}
	}
}

// Scatter copies lane c into dst[c] for every active lane. Each dst[c]
// must have length n.
func (b *SoABlock) Scatter(dst [][]int) {
	n, w := b.M.G.N(), b.w
	if len(dst) != w {
		panic(fmt.Sprintf("chains: Scatter got %d destinations for %d lanes", len(dst), w))
	}
	for v := 0; v < n; v++ {
		row := b.x[v*w : v*w+w]
		for c, out := range dst {
			out[v] = int(row[c])
		}
	}
}

// Step advances all lanes by one round, reporting to Obs like
// Sampler.Step (shard 0, flips uncounted).
func (b *SoABlock) Step() {
	if b.Obs != nil {
		t0 := time.Now()
		round := b.round
		b.step()
		b.Obs.RoundDone(0, round, time.Since(t0).Nanoseconds(), 0, -1)
		return
	}
	b.step()
}

// Run advances all lanes by t rounds, polling Abort at round boundaries.
func (b *SoABlock) Run(t int) {
	for i := 0; i < t; i++ {
		if b.Abort != nil && b.Abort.Load() {
			return
		}
		b.Step()
	}
}

func (b *SoABlock) step() {
	switch b.Alg {
	case Glauber:
		b.glauberStep()
	case LubyGlauber:
		b.lubyGlauberRound()
	case LocalMetropolis:
		switch {
		case b.coloring && !b.Opts.DropRule3:
			b.coloringRoundSymmetric()
		case b.coloring:
			b.coloringRoundDropRule3()
		default:
			b.localMetropolisRound()
		}
	}
	b.round++
}

// laneMask returns the full mask over w lanes.
func laneMask(w int) uint64 {
	if w == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// glauberStep is GlauberStep per lane: each lane picks its own vertex
// (the picks differ across lanes — same PRF inputs as the per-chain
// kernel), so only the strided marginal is shared, not the walk.
func (b *SoABlock) glauberStep() {
	m, w := b.M, b.w
	n := m.G.N()
	round := uint64(b.round)
	for c := 0; c < w; c++ {
		v := int(rng.PRF(b.seeds[c], TagPick, round) % uint64(n))
		u := rng.PRFFloat64(b.seeds[c], TagUpdate, uint64(v), round)
		if spin, ok := m.ResampleLaneU(v, b.x, w, c, b.marg, u); ok {
			b.x[v*w+c] = int32(spin)
		}
	}
}

// lubyGlauberRound is LubyGlauberRound over all lanes: one β fill, one
// CSR membership walk deciding all lanes per vertex, and lane-sequential
// heat-bath resampling of the winners. Per lane the arithmetic is the
// sequential kernel's verbatim: BetaLocalMax's strict tie-break and
// ResampleU's marginal+draw order.
func (b *SoABlock) lubyGlauberRound() {
	m, w := b.M, b.w
	g := m.G
	n := g.N()
	round := uint64(b.round)
	rng.KeysInto(b.kb[:w], b.seeds[:w], TagBeta, round)
	rng.KeysInto(b.ku[:w], b.seeds[:w], TagUpdate, round)
	beta := b.beta
	for v := 0; v < n; v++ {
		row := beta[v*w : v*w+w]
		for c := range row {
			row[c] = b.kb[c].Float64(uint64(v))
		}
	}
	rowPtr, nbr, _ := g.CSR()
	full := laneMask(w)
	for v := 0; v < n; v++ {
		mask := full
		vrow := beta[v*w : v*w+w]
		for _, u := range nbr[rowPtr[v]:rowPtr[v+1]] {
			urow := beta[int(u)*w : int(u)*w+w]
			rem := mask
			for rem != 0 {
				c := bits.TrailingZeros64(rem)
				rem &= rem - 1
				if urow[c] >= vrow[c] {
					mask &^= 1 << c
				}
			}
			if mask == 0 {
				break
			}
		}
		// Winners form an independent set per lane, so in-place lane
		// updates are exact — no resampled lane value is read by another
		// winner of the same lane this round.
		for mask != 0 {
			c := bits.TrailingZeros64(mask)
			mask &= mask - 1
			if spin, ok := m.ResampleLaneU(v, b.x, w, c, b.marg, b.ku[c].Float64(uint64(v))); ok {
				b.x[v*w+c] = int32(spin)
			}
		}
	}
}

// coloringRoundSymmetric is ColoringLocalMetropolisRound's default
// (all-three-rules) path over all lanes: uniform proposals, one CSR walk
// computing every lane's accept bit per vertex, then a lane-masked apply
// sweep. Rule arithmetic per lane matches coloringVertexOK exactly.
func (b *SoABlock) coloringRoundSymmetric() {
	m, w := b.M, b.w
	g := m.G
	n := g.N()
	rng.KeysInto(b.ku[:w], b.seeds[:w], TagUpdate, uint64(b.round))
	qf := float64(m.Q)
	prop, x := b.prop, b.x
	for v := 0; v < n; v++ {
		row := prop[v*w : v*w+w]
		for c := range row {
			row[c] = int32(b.ku[c].Float64(uint64(v)) * qf)
		}
	}
	rowPtr, nbr, _ := g.CSR()
	full := laneMask(w)
	for v := 0; v < n; v++ {
		mask := full
		vp := prop[v*w : v*w+w]
		vx := x[v*w : v*w+w]
		for _, u := range nbr[rowPtr[v]:rowPtr[v+1]] {
			up := prop[int(u)*w : int(u)*w+w]
			ux := x[int(u)*w : int(u)*w+w]
			rem := mask
			for rem != 0 {
				c := bits.TrailingZeros64(rem)
				rem &= rem - 1
				if vp[c] == up[c] || vp[c] == ux[c] || up[c] == vx[c] {
					mask &^= 1 << c
				}
			}
			if mask == 0 {
				break
			}
		}
		b.accept[v] = mask
	}
	for v := 0; v < n; v++ {
		mask := b.accept[v]
		for mask != 0 {
			c := bits.TrailingZeros64(mask)
			mask &= mask - 1
			x[v*w+c] = prop[v*w+c]
		}
	}
}

// coloringRoundDropRule3 is the E4-ablation coloring round over all
// lanes. Without rule 3 the filter is asymmetric in the edge orientation,
// so it keeps per-edge lane pass masks (coloringEdgeFilter's rule order)
// and applies them through the incidence walk.
func (b *SoABlock) coloringRoundDropRule3() {
	m, w := b.M, b.w
	g := m.G
	n := g.N()
	rng.KeysInto(b.ku[:w], b.seeds[:w], TagUpdate, uint64(b.round))
	qf := float64(m.Q)
	prop, x := b.prop, b.x
	for v := 0; v < n; v++ {
		row := prop[v*w : v*w+w]
		for c := range row {
			row[c] = int32(b.ku[c].Float64(uint64(v)) * qf)
		}
	}
	edges := g.Edges()
	for id := range edges {
		e := &edges[id]
		pu := prop[int(e.U)*w : int(e.U)*w+w]
		pv := prop[int(e.V)*w : int(e.V)*w+w]
		xu := x[int(e.U)*w : int(e.U)*w+w]
		var pm uint64
		for c := 0; c < w; c++ {
			if pu[c] != pv[c] && pv[c] != xu[c] {
				pm |= 1 << c
			}
		}
		b.pass[id] = pm
	}
	b.applyPassAccept()
}

// localMetropolisRound is LocalMetropolisRound over all lanes: proposals
// through the precomputed cumulative tables, the three-factor edge filter
// with per-(lane, edge) coins in EdgePassProb's multiplication order, and
// the incidence-walk accept.
func (b *SoABlock) localMetropolisRound() {
	m, w := b.M, b.w
	g := m.G
	n := g.N()
	round := uint64(b.round)
	rng.KeysInto(b.ku[:w], b.seeds[:w], TagUpdate, round)
	rng.KeysInto(b.kc[:w], b.seeds[:w], TagCoin, round)
	prop, x := b.prop, b.x
	for v := 0; v < n; v++ {
		row := prop[v*w : v*w+w]
		for c := range row {
			row[c] = int32(m.ProposeU(v, b.ku[c].Float64(uint64(v))))
		}
	}
	dropRule3 := b.Opts.DropRule3
	edges := g.Edges()
	for id := range edges {
		e := &edges[id]
		a := m.NormalizedEdge(id)
		pu := prop[int(e.U)*w : int(e.U)*w+w]
		pv := prop[int(e.V)*w : int(e.V)*w+w]
		xu := x[int(e.U)*w : int(e.U)*w+w]
		xv := x[int(e.V)*w : int(e.V)*w+w]
		var pm uint64
		for c := 0; c < w; c++ {
			su, sv := int(pu[c]), int(pv[c])
			p := a.At(su, sv) * a.At(int(xu[c]), sv)
			if !dropRule3 {
				p *= a.At(su, int(xv[c]))
			}
			if b.kc[c].Float64(uint64(id)) < p {
				pm |= 1 << c
			}
		}
		b.pass[id] = pm
	}
	b.applyPassAccept()
}

// applyPassAccept is applyPassAccept over lane masks: a lane accepts at v
// iff its bit survives every incident edge's pass mask.
func (b *SoABlock) applyPassAccept() {
	g := b.M.G
	n, w := g.N(), b.w
	rowPtr, _, inc := g.CSR()
	full := laneMask(w)
	prop, x := b.prop, b.x
	for v := 0; v < n; v++ {
		mask := full
		for t, end := rowPtr[v], rowPtr[v+1]; t < end; t++ {
			mask &= b.pass[inc[t]]
			if mask == 0 {
				break
			}
		}
		for mask != 0 {
			c := bits.TrailingZeros64(mask)
			mask &= mask - 1
			x[v*w+c] = prop[v*w+c]
		}
	}
}
