package chains

import (
	"testing"

	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// Corollary 3.4: LubyGlauber samples list colorings whenever every list
// satisfies q_v ≥ (2+δ)d_v. These tests exercise the list-coloring model
// end to end: feasibility, correct stationary distribution on small
// instances, and heterogeneous lists.

func randomLists(g *graph.Graph, q int, slack int, r *rng.Source) [][]int {
	lists := make([][]int, g.N())
	for v := range lists {
		size := 2*g.Deg(v) + slack
		if size > q {
			size = q
		}
		perm := r.Perm(q)
		lists[v] = append([]int(nil), perm[:size]...)
	}
	return lists
}

func TestListColoringChainStaysInLists(t *testing.T) {
	r := rng.New(5)
	g := graph.Grid(4, 4)
	q := 2*g.MaxDeg() + 4
	lists := randomLists(g, q, 3, r)
	m, err := mrf.ListColoring(g, q, lists)
	if err != nil {
		t.Fatal(err)
	}
	init, err := GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{LubyGlauber, LocalMetropolis} {
		s := NewSampler(m, init, 9, alg, Options{})
		for k := 0; k < 300; k++ {
			s.Step()
			for v, c := range s.X {
				ok := false
				for _, a := range lists[v] {
					if a == c {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("%v: vertex %d left its list at round %d", alg, v, k)
				}
			}
			if !m.Feasible(s.X) {
				t.Fatalf("%v: infeasible at round %d", alg, k)
			}
		}
	}
}

func TestListColoringExactStationarity(t *testing.T) {
	// Exact transition-matrix verification with heterogeneous lists — the
	// full Corollary 3.4 setting at verifiable scale.
	g := graph.Path(3)
	lists := [][]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}}
	m, err := mrf.ListColoring(g, 4, lists)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := exact.Enumerate(3, 4, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	P, err := exact.LubyGlauberMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.DetailedBalanceErr(mu.P); e > 1e-12 {
		t.Fatalf("list-coloring LubyGlauber detailed balance violated by %v", e)
	}
	Plm, err := exact.LocalMetropolisMatrix(m, false, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := Plm.DetailedBalanceErr(mu.P); e > 1e-12 {
		t.Fatalf("list-coloring LocalMetropolis detailed balance violated by %v", e)
	}
}

func TestListColoringDobrushinBudget(t *testing.T) {
	// The §3.2 condition uses per-vertex list sizes: q_v ≥ (2+δ)d_v keeps
	// α < 1 even when the global q is large.
	g := graph.Star(6) // center degree 5
	qs := []int{13, 3, 3, 3, 3, 3}
	alpha := mrf.DobrushinAlphaColoring(g, qs)
	if alpha >= 1 {
		t.Fatalf("alpha %v, want < 1 under Corollary 3.4's condition", alpha)
	}
	// Violating the condition at one vertex blows α up.
	qs[0] = 6 // center: d=5, q_v−d_v = 1 → α = 5
	if a := mrf.DobrushinAlphaColoring(g, qs); a < 1 {
		t.Fatalf("alpha %v, want >= 1 when the condition fails", a)
	}
}
