package csp

// Golden equivalence tests for the compiled CSP kernels: the pre-refactor
// implementations — closure-valued constraint evaluation with per-call
// gather buffers, full 7-mix PRF calls per variate, per-round β allocation,
// linear-scan proposal draws — are kept here verbatim as references, and
// every rebuilt kernel (compiled-table evaluation, partial-key PRF
// streaming, cumulative-table proposals, the vertex-parallel phases) must
// reproduce their trajectories byte for byte.

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// refEval is the pre-refactor CSP.eval.
func refEval(c *CSP, con *Constraint, sigma []int, buf *[]int) float64 {
	if cap(*buf) < len(con.Scope) {
		*buf = make([]int, len(con.Scope))
	}
	vals := (*buf)[:len(con.Scope)]
	for i, v := range con.Scope {
		vals[i] = sigma[v]
	}
	return con.F(vals)
}

// refMarginalInto is the pre-refactor CSP.MarginalInto.
func refMarginalInto(c *CSP, v int, sigma []int, out []float64) bool {
	saved := sigma[v]
	defer func() { sigma[v] = saved }()
	buf := make([]int, 8)
	total := 0.0
	for a := 0; a < c.Q; a++ {
		w := c.VertexB[v][a]
		if w > 0 {
			sigma[v] = a
			for _, ci := range c.ConstraintsOf(v) {
				w *= refEval(c, &c.Cons[ci], sigma, &buf)
				if w == 0 {
					break
				}
			}
		}
		out[a] = w
		total += w
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
	return true
}

// refCheckProb is the pre-refactor CSP.CheckProb.
func refCheckProb(c *CSP, ci int, cur, prop []int) float64 {
	con := &c.Cons[ci]
	k := len(con.Scope)
	curV := make([]int, k)
	propV := make([]int, k)
	for i, v := range con.Scope {
		curV[i] = cur[v]
		propV[i] = prop[v]
	}
	tau := make([]int, k)
	p := 1.0
	// mask bit i set means position i takes the current value; the all-ones
	// mask is the excluded X_{S_c}.
	for mask := 0; mask < (1<<k)-1; mask++ {
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				tau[i] = curV[i]
			} else {
				tau[i] = propV[i]
			}
		}
		p *= con.F(tau) / con.Norm
		if p == 0 {
			return 0
		}
	}
	return p
}

// refLubyGlauberRoundPRF is the pre-refactor LubyGlauberRoundPRF.
func refLubyGlauberRoundPRF(c *CSP, x []int, seed uint64, round int, marg []float64) {
	n := c.N
	beta := make([]float64, n)
	for v := 0; v < n; v++ {
		beta[v] = rng.PRFFloat64(seed, TagBeta, uint64(v), uint64(round))
	}
	for v := 0; v < n; v++ {
		isMax := true
		for _, u := range c.Neighborhood(v) {
			if beta[u] >= beta[v] {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		if refMarginalInto(c, v, x, marg) {
			u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
			x[v] = rng.CategoricalU(marg, u)
		}
	}
}

// refLocalMetropolisRoundPRF is the pre-refactor LocalMetropolisRoundPRF.
func refLocalMetropolisRoundPRF(c *CSP, x []int, seed uint64, round int, marg []float64, prop []int, pass []bool) {
	n := c.N
	for v := 0; v < n; v++ {
		c.ProposalDistInto(v, marg)
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		prop[v] = rng.CategoricalU(marg, u)
	}
	for ci := range c.Cons {
		coin := rng.PRFFloat64(seed, TagCoin, uint64(ci), uint64(round))
		pass[ci] = coin < refCheckProb(c, ci, x, prop)
	}
	for v := 0; v < n; v++ {
		ok := true
		for _, ci := range c.ConstraintsOf(v) {
			if !pass[ci] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = prop[v]
		}
	}
}

// kernelTestCSPs returns a diverse CSP set: hard cover constraints of mixed
// arity (dominating set), weighted covers with non-uniform activities, NAE
// hyperedges, binary MRF-equivalent constraints, a soft ternary factor with
// skewed activities, and a constraint too large to tabulate (the closure
// fallback path).
func kernelTestCSPs(t *testing.T) []struct {
	name string
	c    *CSP
	init []int
} {
	t.Helper()
	var out []struct {
		name string
		c    *CSP
		init []int
	}
	add := func(name string, c *CSP, init []int) {
		if !c.Feasible(init) {
			t.Fatalf("%s: test init infeasible", name)
		}
		out = append(out, struct {
			name string
			c    *CSP
			init []int
		}{name, c, init})
	}

	// Dominating set on a grid: cover constraints of arity 3/4/5 dedupe to
	// three compiled shapes.
	gridDom := DominatingSet(graph.Grid(6, 7))
	ones := make([]int, gridDom.N)
	for i := range ones {
		ones[i] = 1
	}
	add("domset-grid6x7", gridDom, ones)

	// Weighted dominating set on a cycle: soft vertex activities.
	cycDom := WeightedDominatingSet(graph.Cycle(17), 0.7)
	onesC := make([]int, cycDom.N)
	for i := range onesC {
		onesC[i] = 1
	}
	add("weighted-domset-cycle17", cycDom, onesC)

	// NAE hypergraph 3-coloring: consecutive triples on a cycle.
	const naeN = 20
	scopes := make([][]int32, naeN)
	for i := range scopes {
		scopes[i] = []int32{int32(i), int32((i + 1) % naeN), int32((i + 2) % naeN)}
	}
	nae := NotAllEqual(naeN, 3, scopes)
	naeInit := make([]int, naeN)
	for i := range naeInit {
		naeInit[i] = i % 3
	}
	add("nae-cycle20-q3", nae, naeInit)

	// Binary constraints from an MRF coloring (the E10 cross-validation
	// shape).
	g := graph.Cycle(12)
	m := mrf.Coloring(g, 4)
	uni := make([][]float64, g.N())
	for i := range uni {
		uni[i] = []float64{1, 1, 1, 1}
	}
	col := FromMRF(g, 4, func(id, a, b int) float64 { return m.EdgeA[id].At(a, b) }, uni)
	colInit := make([]int, g.N())
	for i := range colInit {
		colInit[i] = i % 2
	}
	add("coloring-cycle12-q4", col, colInit)

	// Soft ternary factors with skewed activities: always feasible,
	// exercises non-0/1 tables and non-uniform proposal distributions.
	const softN = 11
	softB := make([][]float64, softN)
	for v := range softB {
		softB[v] = []float64{1, 0.5 + 0.1*float64(v%4), 2}
	}
	softCons := make([]Constraint, 0, softN)
	for v := 0; v < softN; v++ {
		softCons = append(softCons, Constraint{
			Scope: []int32{int32(v), int32((v + 3) % softN), int32((v + 5) % softN)},
			F: func(vals []int) float64 {
				return 0.25 + float64(vals[0]+2*vals[1]+vals[2])
			},
		})
	}
	soft := MustNew(softN, 3, softB, softCons)
	add("soft-ternary-q3", soft, make([]int, softN))

	// A q=6 arity-7 factor (6^7 = 279936 > tableMaxEntries): exercises the
	// closure fallback inside otherwise-compiled rounds.
	const bigN = 9
	bigB := make([][]float64, bigN)
	for v := range bigB {
		bigB[v] = []float64{3, 1, 1, 2, 1, 1}
	}
	bigCons := []Constraint{
		{
			Scope: []int32{0, 1, 2, 3, 4, 5, 6},
			F: func(vals []int) float64 {
				s := 0
				for _, x := range vals {
					s += x
				}
				return 1 / (1 + float64(s))
			},
		},
		{Scope: []int32{6, 7}, F: func(vals []int) float64 {
			if vals[0] == vals[1] {
				return 0.5
			}
			return 1
		}},
		{Scope: []int32{7, 8, 0}, F: func(vals []int) float64 {
			return 1 + float64(vals[0]*vals[1]+vals[2])
		}},
	}
	big := MustNew(bigN, 6, bigB, bigCons)
	if big.conTab[0] != -1 {
		t.Fatal("arity-7 q=6 constraint unexpectedly compiled to a table")
	}
	add("fallback-arity7-q6", big, make([]int, bigN))

	return out
}

// TestCSPLubyGlauberRoundMatchesReference pins the rebuilt hypergraph
// LubyGlauber kernel to the seed-era reference, round by round.
func TestCSPLubyGlauberRoundMatchesReference(t *testing.T) {
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			const seed, rounds = 123, 25
			xRef := append([]int(nil), tc.init...)
			xNew := append([]int(nil), tc.init...)
			marg := make([]float64, tc.c.Q)
			sc := NewScratch(tc.c)
			for r := 0; r < rounds; r++ {
				refLubyGlauberRoundPRF(tc.c, xRef, seed, r, marg)
				LubyGlauberRoundPRF(tc.c, xNew, seed, r, sc)
				for v := range xRef {
					if xRef[v] != xNew[v] {
						t.Fatalf("round %d: trajectories diverge at vertex %d (ref=%d new=%d)", r, v, xRef[v], xNew[v])
					}
				}
			}
		})
	}
}

// TestCSPLocalMetropolisRoundMatchesReference pins the rebuilt CSP
// LocalMetropolis kernel to the seed-era reference, round by round.
func TestCSPLocalMetropolisRoundMatchesReference(t *testing.T) {
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			const seed, rounds = 321, 25
			xRef := append([]int(nil), tc.init...)
			xNew := append([]int(nil), tc.init...)
			marg := make([]float64, tc.c.Q)
			prop := make([]int, tc.c.N)
			pass := make([]bool, len(tc.c.Cons))
			sc := NewScratch(tc.c)
			for r := 0; r < rounds; r++ {
				refLocalMetropolisRoundPRF(tc.c, xRef, seed, r, marg, prop, pass)
				LocalMetropolisRoundPRF(tc.c, xNew, seed, r, sc)
				for v := range xRef {
					if xRef[v] != xNew[v] {
						t.Fatalf("round %d: trajectories diverge at vertex %d (ref=%d new=%d)", r, v, xRef[v], xNew[v])
					}
				}
			}
		})
	}
}

// TestCSPParallelRoundsMatchSequential pins the vertex-parallel CSP round
// phases to the sequential kernels at several worker counts, including
// counts that do not divide the vertex or constraint counts.
func TestCSPParallelRoundsMatchSequential(t *testing.T) {
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			const seed, rounds = 77, 15
			seqLG := append([]int(nil), tc.init...)
			seqLM := append([]int(nil), tc.init...)
			sc := NewScratch(tc.c)
			for r := 0; r < rounds; r++ {
				LubyGlauberRoundPRF(tc.c, seqLG, seed, r, sc)
				LocalMetropolisRoundPRF(tc.c, seqLM, seed, r, sc)
			}
			for _, workers := range []int{1, 2, 3, 7} {
				parLG := append([]int(nil), tc.init...)
				parLM := append([]int(nil), tc.init...)
				psc := NewScratch(tc.c)
				for r := 0; r < rounds; r++ {
					LubyGlauberRoundParallel(tc.c, parLG, seed, r, psc, workers)
					LocalMetropolisRoundParallel(tc.c, parLM, seed, r, psc, workers)
				}
				for v := range seqLG {
					if seqLG[v] != parLG[v] {
						t.Fatalf("workers=%d: LubyGlauber diverges at vertex %d", workers, v)
					}
					if seqLM[v] != parLM[v] {
						t.Fatalf("workers=%d: LocalMetropolis diverges at vertex %d", workers, v)
					}
				}
			}
		})
	}
}

// TestCompiledMarginalMatchesReference pins MarginalInto (compiled tables +
// fallback) to the closure reference on random configurations.
func TestCompiledMarginalMatchesReference(t *testing.T) {
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(5)
			sigma := append([]int(nil), tc.init...)
			got := make([]float64, tc.c.Q)
			want := make([]float64, tc.c.Q)
			for trial := 0; trial < 50; trial++ {
				v := r.Intn(tc.c.N)
				okRef := refMarginalInto(tc.c, v, sigma, want)
				okNew := tc.c.MarginalInto(v, sigma, got)
				if okRef != okNew {
					t.Fatalf("trial %d: definedness diverges (ref=%v new=%v)", trial, okRef, okNew)
				}
				if okRef {
					for a := range want {
						if want[a] != got[a] {
							t.Fatalf("trial %d vertex %d: marginal[%d] = %v, ref %v", trial, v, a, got[a], want[a])
						}
					}
					sigma[v] = rng.CategoricalU(got, r.Float64())
				}
			}
		})
	}
}

// TestCompiledCheckProbMatchesReference pins CheckProb (precomputed mixing
// products, index arithmetic, and fallback) to the closure reference on
// random (current, proposal) pairs.
func TestCompiledCheckProbMatchesReference(t *testing.T) {
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(9)
			cur := make([]int, tc.c.N)
			prop := make([]int, tc.c.N)
			for trial := 0; trial < 30; trial++ {
				for v := range cur {
					cur[v] = r.Intn(tc.c.Q)
					prop[v] = r.Intn(tc.c.Q)
				}
				for ci := range tc.c.Cons {
					want := refCheckProb(tc.c, ci, cur, prop)
					got := tc.c.CheckProb(ci, cur, prop)
					if want != got {
						t.Fatalf("trial %d constraint %d: CheckProb = %v, ref %v", trial, ci, got, want)
					}
				}
			}
		})
	}
}

// TestTableDedup pins the activity-matrix trick: families that build n
// identical closures compile to a handful of shared tables.
func TestTableDedup(t *testing.T) {
	c := DominatingSet(graph.Grid(8, 9))
	// Corner, border, and interior cover constraints: arities 3, 4, 5.
	if got := len(c.tabs); got != 3 {
		t.Fatalf("grid dominating set compiled %d distinct tables, want 3", got)
	}
	nae := NotAllEqual(50, 3, func() [][]int32 {
		s := make([][]int32, 50)
		for i := range s {
			s[i] = []int32{int32(i), int32((i + 1) % 50), int32((i + 2) % 50)}
		}
		return s
	}())
	if got := len(nae.tabs); got != 1 {
		t.Fatalf("NAE compiled %d distinct tables, want 1", got)
	}
	if got := len(nae.propDist); got != 1 {
		t.Fatalf("NAE compiled %d distinct proposal rows, want 1", got)
	}
}
