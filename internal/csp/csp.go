// Package csp implements weighted local constraint satisfaction problems
// (factor graphs) as defined in §2.2 of the paper: a collection C of
// constraints c = (f_c, S_c), where f_c : [q]^{S_c} → R≥0 is a non-negative
// constraint function with scope S_c ⊆ V, plus per-vertex activities. A
// configuration σ ∈ [q]^V has weight
//
//	w(σ) = Π_{c∈C} f_c(σ|_{S_c}) · Π_v b_v(σ_v),
//
// and the Gibbs distribution is proportional to w. Boolean-valued f_c give
// the uniform distribution over CSP solutions. MRFs are the special case of
// unary and binary symmetric constraints.
//
// The package also implements the hypergraph generalizations of both chains
// described in the paper's remarks:
//
//   - LubyGlauber over CSPs (§3 remark): the neighborhood is overridden to
//     Γ(v) = {u ≠ v : ∃c, {u,v} ⊆ S_c} and the Luby step selects a strongly
//     independent set of the constraint hypergraph.
//   - LocalMetropolis over CSPs (§4 remark): a k-ary constraint passes its
//     check with probability Π f̃_c(τ) over the 2^k − 1 mixings τ of the
//     proposals σ_{S_c} with the current values X_{S_c}, excluding X_{S_c}
//     itself.
//
// Compiled form. New already has to enumerate each constraint's full
// [q]^arity domain to compute the normalizing maximum; it keeps those values
// as a flat truth/weight table per DISTINCT constraint shape (families like
// DominatingSet and NotAllEqual build n closures that are all the same
// function — they share one table), so the hot paths — conditional
// marginals, configuration weights, and the LocalMetropolis check — are
// mixed-radix index arithmetic instead of closure calls. For small shapes
// the 2^k − 1 mixing products are additionally precomputed per
// (current, proposal) index pair. Constraints too large to tabulate
// (q^arity > tableMaxEntries) transparently fall back to the closure path;
// both paths produce bit-identical floats (the tables store exactly the
// values F returns). All indexes are flat int32 CSR arrays.
package csp

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// Constraint is a weighted local constraint (f_c, S_c). F must be
// non-negative, and its maximum over [q]^|Scope| must be positive; Norm
// must be set to that maximum (New computes it).
type Constraint struct {
	// Scope lists the distinct vertices the constraint reads, in a fixed
	// order matching F's argument order.
	Scope []int32
	// F evaluates the constraint on values aligned with Scope.
	F func(vals []int) float64
	// Norm is max F, filled in by New; F/Norm is the normalized factor f̃_c.
	Norm float64
}

// Compilation limits. maxNormArity and the 1<<24 domain cap predate the
// compiled tables (Norm needs the full enumeration either way); the two
// table thresholds only steer how much of the enumeration is kept.
const (
	// maxNormArity bounds constraint arity (the domain enumeration and the
	// 2^k mixing loop are exponential in it).
	maxNormArity = 12
	// tableMaxEntries bounds the per-shape value tables New retains
	// (64k float64s = 512KiB per distinct shape); larger constraints use
	// the closure fallback.
	tableMaxEntries = 1 << 16
	// checkTableMaxSize bounds the domain size for which the full
	// (cur, prop) → LocalMetropolis pass-probability matrix is precomputed
	// (size² entries, so ≤ 4096 float64s).
	checkTableMaxSize = 64
)

// conTable is one distinct compiled constraint shape.
type conTable struct {
	arity int
	size  int // q^arity
	// vals[i] = F(decode(i)) with scope position 0 varying fastest — the
	// same digit order as the domain enumeration and the wire codec's
	// "table" constraints.
	vals []float64
	// norm[i] = vals[i]/Norm — the normalized factor f̃_c.
	norm []float64
	// check[cur*size+prop] is the LocalMetropolis pass probability
	// Π_{mixings τ ≠ cur} f̃(τ); nil when size > checkTableMaxSize.
	check []float64
}

// buildCheck fills t.check. The mask loop runs in exactly the order
// CheckProb's on-the-fly product does, so the stored probability is
// bit-identical to the sequential computation.
func (t *conTable) buildCheck(q int) {
	k := t.arity
	size := t.size
	t.check = make([]float64, size*size)
	curD := make([]int, k)
	propD := make([]int, k)
	stride := make([]int, k)
	s := 1
	for j := 0; j < k; j++ {
		stride[j] = s
		s *= q
	}
	for cur := 0; cur < size; cur++ {
		tc := cur
		for j := 0; j < k; j++ {
			curD[j] = tc % q
			tc /= q
		}
		for prop := 0; prop < size; prop++ {
			tp := prop
			for j := 0; j < k; j++ {
				propD[j] = tp % q
				tp /= q
			}
			p := 1.0
			for mask := 0; mask < (1<<k)-1; mask++ {
				idx := 0
				for j := 0; j < k; j++ {
					if mask&(1<<j) != 0 {
						idx += curD[j] * stride[j]
					} else {
						idx += propD[j] * stride[j]
					}
				}
				p *= t.norm[idx]
				if p == 0 {
					break
				}
			}
			t.check[cur*size+prop] = p
		}
	}
}

// CSP is a weighted local CSP over n vertices with spin domain [q].
type CSP struct {
	N int
	Q int
	// VertexB[v] is the vertex activity (length Q, non-negative, positive
	// total mass).
	VertexB [][]float64
	Cons    []Constraint

	// Compiled constraint shapes: conTab[i] indexes tabs, or is -1 for
	// constraints evaluated through their closure (q^arity too large).
	tabs   []*conTable
	conTab []int32

	// Flat scope CSR: constraint i reads scopeV[scopeOff[i]:scopeOff[i+1]].
	scopeOff []int32
	scopeV   []int32
	// Vertex → incident-constraint CSR, ascending constraint index.
	vconsOff []int32
	vconsIdx []int32
	// Hypergraph neighborhood CSR: Γ(v), distinct and sorted.
	nbrOff []int32
	nbrIdx []int32

	// Deduplicated proposal distributions: propDist/propCum[propOf[v]] are
	// vertex v's normalized activity and its running sums (the
	// CategoricalCumU table).
	propDist [][]float64
	propCum  [][]float64
	propOf   []int32

	maxArity    int
	maxVconsDeg int // max constraints incident to one vertex

	// msPool recycles marginal scratch for the convenience entry points
	// (MarginalInto without caller-owned scratch); the round kernels carry
	// their own Scratch instead.
	msPool sync.Pool
}

// New validates and assembles a CSP. It evaluates each constraint over its
// full domain to compute the normalizing maximum — and keeps the enumerated
// values as a compiled lookup table per distinct shape — so constraint
// arities must stay small (q^arity is enumerated); the paper's local CSPs
// have constant-diameter scopes, hence constant arity on bounded-degree
// graphs.
func New(n, q int, vertexB [][]float64, cons []Constraint) (*CSP, error) {
	if n < 1 || q < 2 {
		return nil, fmt.Errorf("csp: need n >= 1 and q >= 2, got n=%d q=%d", n, q)
	}
	if len(vertexB) != n {
		return nil, fmt.Errorf("csp: %d vertex activities for %d vertices", len(vertexB), n)
	}
	for v, b := range vertexB {
		if len(b) != q {
			return nil, fmt.Errorf("csp: vertex %d activity has length %d, want %d", v, len(b), q)
		}
		total := 0.0
		for _, x := range b {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("csp: vertex %d activity entry invalid: %v", v, x)
			}
			total += x
		}
		if total <= 0 {
			return nil, fmt.Errorf("csp: vertex %d activity has zero mass", v)
		}
	}
	c := &CSP{N: n, Q: q, VertexB: vertexB, Cons: make([]Constraint, len(cons))}
	copy(c.Cons, cons)
	c.conTab = make([]int32, len(c.Cons))
	pool := map[string]int32{}
	seen := make([]bool, n)
	for i := range c.Cons {
		con := &c.Cons[i]
		if len(con.Scope) == 0 {
			return nil, fmt.Errorf("csp: constraint %d has empty scope", i)
		}
		for _, v := range con.Scope {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("csp: constraint %d scope vertex %d out of range", i, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("csp: constraint %d has duplicate scope vertex %d", i, v)
			}
			seen[v] = true
		}
		for _, v := range con.Scope {
			seen[v] = false
		}
		if len(con.Scope) > c.maxArity {
			c.maxArity = len(con.Scope)
		}
		norm, vals, err := enumerateDomain(con.F, len(con.Scope), q)
		if err != nil {
			return nil, fmt.Errorf("csp: constraint %d: %w", i, err)
		}
		if norm <= 0 {
			return nil, fmt.Errorf("csp: constraint %d is identically zero", i)
		}
		con.Norm = norm
		if vals == nil {
			c.conTab[i] = -1 // closure fallback
			continue
		}
		key := tableKey(vals)
		if ti, ok := pool[key]; ok {
			c.conTab[i] = ti
			continue
		}
		t := &conTable{arity: len(con.Scope), size: len(vals), vals: vals}
		t.norm = make([]float64, len(vals))
		for j, x := range vals {
			t.norm[j] = x / norm
		}
		if t.size <= checkTableMaxSize {
			t.buildCheck(q)
		}
		ti := int32(len(c.tabs))
		c.tabs = append(c.tabs, t)
		pool[key] = ti
		c.conTab[i] = ti
	}
	c.buildIndexes()
	c.buildProposals()
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(n, q int, vertexB [][]float64, cons []Constraint) *CSP {
	c, err := New(n, q, vertexB, cons)
	if err != nil {
		panic(err)
	}
	return c
}

// enumerateDomain sweeps f over [q]^arity, returning the maximum and — when
// the domain fits tableMaxEntries — the full value table (scope position 0
// varying fastest).
func enumerateDomain(f func([]int) float64, arity, q int) (norm float64, vals []float64, err error) {
	if arity > maxNormArity {
		return 0, nil, fmt.Errorf("arity %d too large to normalize", arity)
	}
	args := make([]int, arity)
	total := 1
	for i := 0; i < arity; i++ {
		total *= q
		if total > 1<<24 {
			return 0, nil, fmt.Errorf("domain q^%d too large to normalize", arity)
		}
	}
	if total <= tableMaxEntries {
		vals = make([]float64, total)
	}
	best := math.Inf(-1)
	for s := 0; s < total; s++ {
		t := s
		for i := 0; i < arity; i++ {
			args[i] = t % q
			t /= q
		}
		w := f(args)
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, nil, fmt.Errorf("constraint value invalid: %v", w)
		}
		if w > best {
			best = w
		}
		if vals != nil {
			vals[s] = w
		}
	}
	return best, vals, nil
}

// tableKey builds the dedup key of a value table: its raw float64 bits.
// Two constraints share a compiled shape iff their enumerations agree
// exactly (same length implies same arity for a fixed q).
func tableKey(vals []float64) string {
	b := make([]byte, 8*len(vals))
	for i, x := range vals {
		u := math.Float64bits(x)
		for j := 0; j < 8; j++ {
			b[8*i+j] = byte(u >> (8 * j))
		}
	}
	return string(b)
}

// buildIndexes assembles the flat CSR indexes: scopes, vertex→constraint
// incidence, and the hypergraph neighborhoods (sort + dedupe over the
// scope incidence — no per-vertex hash sets).
func (c *CSP) buildIndexes() {
	nCons := len(c.Cons)
	total := 0
	for i := range c.Cons {
		total += len(c.Cons[i].Scope)
	}
	c.scopeOff = make([]int32, nCons+1)
	c.scopeV = make([]int32, 0, total)
	for i := range c.Cons {
		c.scopeV = append(c.scopeV, c.Cons[i].Scope...)
		c.scopeOff[i+1] = int32(len(c.scopeV))
	}

	c.vconsOff = make([]int32, c.N+1)
	for _, v := range c.scopeV {
		c.vconsOff[v+1]++
	}
	for v := 0; v < c.N; v++ {
		c.vconsOff[v+1] += c.vconsOff[v]
	}
	c.vconsIdx = make([]int32, total)
	for v := 0; v < c.N; v++ {
		if d := int(c.vconsOff[v+1] - c.vconsOff[v]); d > c.maxVconsDeg {
			c.maxVconsDeg = d
		}
	}
	cursor := append([]int32(nil), c.vconsOff[:c.N]...)
	for i := range c.Cons {
		for _, v := range c.Cons[i].Scope {
			c.vconsIdx[cursor[v]] = int32(i)
			cursor[v]++
		}
	}

	c.nbrOff = make([]int32, c.N+1)
	nbr := make([]int32, 0, total)
	var buf []int32
	for v := 0; v < c.N; v++ {
		buf = buf[:0]
		for _, ci := range c.vconsIdx[c.vconsOff[v]:c.vconsOff[v+1]] {
			for _, u := range c.scope(ci) {
				if u != int32(v) {
					buf = append(buf, u)
				}
			}
		}
		slices.Sort(buf)
		prev := int32(-1)
		for _, u := range buf {
			if u != prev {
				nbr = append(nbr, u)
				prev = u
			}
		}
		c.nbrOff[v+1] = int32(len(nbr))
	}
	c.nbrIdx = nbr
}

// buildProposals deduplicates the normalized per-vertex proposal
// distributions (vertices routinely share one activity row) and precomputes
// their cumulative tables for CategoricalCumU.
func (c *CSP) buildProposals() {
	c.propOf = make([]int32, c.N)
	byPtr := map[*float64]int32{}
	byContent := map[string]int32{}
	for v, b := range c.VertexB {
		p0 := &b[0]
		if idx, ok := byPtr[p0]; ok {
			c.propOf[v] = idx
			continue
		}
		// Exactly ProposalDistInto's arithmetic, computed once.
		dist := make([]float64, c.Q)
		total := 0.0
		for a := 0; a < c.Q; a++ {
			dist[a] = b[a]
			total += dist[a]
		}
		inv := 1 / total
		for a := 0; a < c.Q; a++ {
			dist[a] *= inv
		}
		key := tableKey(dist)
		if idx, ok := byContent[key]; ok {
			byPtr[p0] = idx
			c.propOf[v] = idx
			continue
		}
		cum := make([]float64, c.Q)
		rng.CumSumInto(dist, cum)
		idx := int32(len(c.propDist))
		c.propDist = append(c.propDist, dist)
		c.propCum = append(c.propCum, cum)
		byPtr[p0] = idx
		byContent[key] = idx
		c.propOf[v] = idx
	}
}

// scope returns constraint ci's scope as a slice of the flat array.
func (c *CSP) scope(ci int32) []int32 {
	return c.scopeV[c.scopeOff[ci]:c.scopeOff[ci+1]]
}

// Neighborhood returns the hypergraph neighborhood Γ(v) (§3 remark). The
// caller must not modify it.
func (c *CSP) Neighborhood(v int) []int32 { return c.nbrIdx[c.nbrOff[v]:c.nbrOff[v+1]] }

// ConstraintsOf returns the indices of the constraints containing v,
// ascending. The caller must not modify it.
func (c *CSP) ConstraintsOf(v int) []int32 { return c.vconsIdx[c.vconsOff[v]:c.vconsOff[v+1]] }

// MaxArity returns the largest constraint scope size.
func (c *CSP) MaxArity() int { return c.maxArity }

// TableOf returns constraint ci's compiled value table — entry i holds
// F(decode(i)) with scope position 0 varying fastest, the same digit
// order as the wire codec's "table" constraints — or nil when the
// constraint's domain was too large to tabulate and it is evaluated
// through its closure. The caller must not modify the table; tables may
// be shared between identical constraints.
func (c *CSP) TableOf(ci int) []float64 {
	if ti := c.conTab[ci]; ti >= 0 {
		return c.tabs[ti].vals
	}
	return nil
}

// PropRow returns vertex v's normalized proposal distribution and its
// cumulative table (shared across vertices with equal activities). The
// caller must not modify them.
func (c *CSP) PropRow(v int) (dist, cum []float64) {
	d := c.propOf[v]
	return c.propDist[d], c.propCum[d]
}

// EvalOn evaluates constraint ci on configuration x through the index map
// scope: scope[j] is the position in x holding the constraint's j-th scope
// vertex. The centralized kernels pass the constraint's own (global) scope;
// the sharded runtime passes shard-local index maps — one implementation, so
// the two cannot drift. buf (len ≥ arity) is scratch for the closure
// fallback; nil allocates when needed.
func (c *CSP) EvalOn(ci int, x []int, scope []int32, buf []int) float64 {
	if ti := c.conTab[ci]; ti >= 0 {
		t := c.tabs[ti]
		idx, stride := 0, 1
		for _, p := range scope {
			idx += x[p] * stride
			stride *= c.Q
		}
		return t.vals[idx]
	}
	if buf == nil {
		buf = make([]int, len(scope))
	}
	vals := buf[:len(scope)]
	for j, p := range scope {
		vals[j] = x[p]
	}
	return c.Cons[ci].F(vals)
}

// Weight returns w(σ).
func (c *CSP) Weight(sigma []int) float64 {
	w := 1.0
	for i := range c.Cons {
		w *= c.EvalOn(i, sigma, c.scope(int32(i)), nil)
		if w == 0 {
			return 0
		}
	}
	for v := 0; v < c.N; v++ {
		w *= c.VertexB[v][sigma[v]]
		if w == 0 {
			return 0
		}
	}
	return w
}

// Feasible reports whether w(σ) > 0.
func (c *CSP) Feasible(sigma []int) bool { return c.Weight(sigma) > 0 }

// margScratch holds the per-call working arrays of marginalInto: the
// hoisted per-constraint table pointers, base indexes, and spin strides,
// plus the closure-fallback gather buffer.
type margScratch struct {
	tabs   []*conTable
	base   []int
	stride []int
	eval   []int
}

func newMargScratch(c *CSP) margScratch {
	return margScratch{
		tabs:   make([]*conTable, c.maxVconsDeg),
		base:   make([]int, c.maxVconsDeg),
		stride: make([]int, c.maxVconsDeg),
		eval:   make([]int, 3*c.maxArity),
	}
}

// MarginalInto fills out with the conditional marginal of v given the rest
// of sigma: µ_v(a | σ_{V∖v}) ∝ b_v(a) · Π_{c ∋ v} f_c(σ with σ_v = a).
// Returns false when the total mass is zero. sigma is restored before
// returning. The round kernels route reusable scratch through marginalInto
// and allocate nothing; this convenience form borrows pooled scratch and is
// safe for concurrent use.
func (c *CSP) MarginalInto(v int, sigma []int, out []float64) bool {
	ms, _ := c.msPool.Get().(*margScratch)
	if ms == nil {
		m := newMargScratch(c)
		ms = &m
	}
	ok := c.marginalInto(v, sigma, out, ms)
	c.msPool.Put(ms)
	return ok
}

func (c *CSP) marginalInto(v int, sigma []int, out []float64, ms *margScratch) bool {
	saved := sigma[v]
	cons := c.vconsIdx[c.vconsOff[v]:c.vconsOff[v+1]]
	b := c.VertexB[v]
	// Hoist each tabulated constraint's mixed-radix index out of the spin
	// loop: with base the index over σ restricted to the other scope
	// members and vstride the stride of v's scope position, the table cell
	// for spin a is base + a·vstride — the exact index the full walk would
	// compute, so the looked-up factors (and the products below, taken in
	// the same ascending-constraint order) are bit-identical.
	for i, ci := range cons {
		ti := c.conTab[ci]
		if ti < 0 {
			ms.tabs[i] = nil // closure fallback, evaluated per spin below
			continue
		}
		t := c.tabs[ti]
		idx, vstride, stride := 0, 0, 1
		for _, u := range c.scope(ci) {
			if int(u) == v {
				vstride = stride
			} else {
				idx += sigma[u] * stride
			}
			stride *= c.Q
		}
		ms.tabs[i] = t
		ms.base[i] = idx
		ms.stride[i] = vstride
	}
	total := 0.0
	for a := 0; a < c.Q; a++ {
		w := b[a]
		if w > 0 {
			sigma[v] = a
			for i, ci := range cons {
				if t := ms.tabs[i]; t != nil {
					w *= t.vals[ms.base[i]+a*ms.stride[i]]
				} else {
					w *= c.EvalOn(int(ci), sigma, c.scope(ci), ms.eval)
				}
				if w == 0 {
					break
				}
			}
		}
		out[a] = w
		total += w
	}
	sigma[v] = saved
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
	return true
}

// CheckProb returns the LocalMetropolis pass probability of constraint ci
// (§4 remark): the product of the normalized factors f̃_c(τ) over the
// 2^k − 1 vectors τ obtained by replacing each subset of scope positions of
// the proposal vector prop with the current vector cur — every mixing except
// cur itself.
func (c *CSP) CheckProb(ci int, cur, prop []int) float64 {
	return c.CheckProbOn(ci, cur, prop, c.scope(int32(ci)), nil)
}

// CheckProbOn is CheckProb through an explicit scope index map (see EvalOn).
// For compiled shapes it is pure index arithmetic — and a single lookup when
// the (cur, prop) product matrix was precomputed. buf (len ≥ 3·arity) is
// scratch for the closure fallback; nil allocates when needed.
func (c *CSP) CheckProbOn(ci int, cur, prop []int, scope []int32, buf []int) float64 {
	k := len(scope)
	if ti := c.conTab[ci]; ti >= 0 {
		t := c.tabs[ti]
		var delta [maxNormArity]int
		curIdx, propIdx, stride := 0, 0, 1
		for j, p := range scope {
			cd, pd := cur[p], prop[p]
			curIdx += cd * stride
			propIdx += pd * stride
			delta[j] = (cd - pd) * stride
			stride *= c.Q
		}
		if t.check != nil {
			return t.check[curIdx*t.size+propIdx]
		}
		p := 1.0
		for mask := 0; mask < (1<<k)-1; mask++ {
			idx := propIdx
			for j := 0; j < k; j++ {
				if mask&(1<<j) != 0 {
					idx += delta[j]
				}
			}
			p *= t.norm[idx]
			if p == 0 {
				return 0
			}
		}
		return p
	}
	// Closure fallback: the seed-era mixing loop, verbatim arithmetic.
	con := &c.Cons[ci]
	if buf == nil {
		buf = make([]int, 3*k)
	}
	curV := buf[:k]
	propV := buf[k : 2*k]
	tau := buf[2*k : 3*k]
	for j, p := range scope {
		curV[j] = cur[p]
		propV[j] = prop[p]
	}
	p := 1.0
	// mask bit i set means position i takes the current value; the all-ones
	// mask is the excluded X_{S_c}.
	for mask := 0; mask < (1<<k)-1; mask++ {
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				tau[i] = curV[i]
			} else {
				tau[i] = propV[i]
			}
		}
		p *= con.F(tau) / con.Norm
		if p == 0 {
			return 0
		}
	}
	return p
}

// ProposalDistInto fills out with the normalized vertex activity of v.
func (c *CSP) ProposalDistInto(v int, out []float64) {
	total := 0.0
	for a := 0; a < c.Q; a++ {
		out[a] = c.VertexB[v][a]
		total += out[a]
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
}

// --- Models ------------------------------------------------------------

// DominatingSet returns the uniform distribution over dominating sets of g
// (spin 1 = in the set): one "cover" constraint per inclusive neighborhood
// Γ⁺(v) requiring at least one chosen vertex (§2.2, "Dominating sets").
func DominatingSet(g *graph.Graph) *CSP {
	return WeightedDominatingSet(g, 1)
}

// WeightedDominatingSet is DominatingSet with weight λ^|S| on set S.
func WeightedDominatingSet(g *graph.Graph, lambda float64) *CSP {
	n := g.N()
	cons := make([]Constraint, 0, n)
	for v := 0; v < n; v++ {
		scope := make([]int32, 0, g.Deg(v)+1)
		scope = append(scope, int32(v))
		scope = append(scope, g.SimpleNeighbors(v)...)
		cons = append(cons, Constraint{
			Scope: scope,
			F: func(vals []int) float64 {
				for _, x := range vals {
					if x == 1 {
						return 1
					}
				}
				return 0
			},
		})
	}
	b := make([][]float64, n)
	vec := []float64{1, lambda}
	for i := range b {
		b[i] = vec
	}
	return MustNew(n, 2, b, cons)
}

// NotAllEqual returns the uniform distribution over [q]^V configurations in
// which no listed scope is monochromatic (hypergraph coloring / NAE-SAT
// style constraints).
func NotAllEqual(n, q int, scopes [][]int32) *CSP {
	cons := make([]Constraint, 0, len(scopes))
	for _, sc := range scopes {
		cons = append(cons, Constraint{
			Scope: sc,
			F: func(vals []int) float64 {
				for _, x := range vals[1:] {
					if x != vals[0] {
						return 1
					}
				}
				return 0
			},
		})
	}
	b := make([][]float64, n)
	ones := make([]float64, q)
	for i := range ones {
		ones[i] = 1
	}
	for i := range b {
		b[i] = ones
	}
	return MustNew(n, q, b, cons)
}

// FromMRF converts an MRF-style model into an equivalent CSP: one binary
// constraint per edge. Both chains on the CSP must then agree with their MRF
// counterparts — the cross-validation used in the E10 experiments.
func FromMRF(g *graph.Graph, q int, edgeF func(edgeID int, a, b int) float64, vertexB [][]float64) *CSP {
	cons := make([]Constraint, 0, g.M())
	for id, e := range g.Edges() {
		id := id
		cons = append(cons, Constraint{
			Scope: []int32{e.U, e.V},
			F: func(vals []int) float64 {
				return edgeF(id, vals[0], vals[1])
			},
		})
	}
	return MustNew(g.N(), q, vertexB, cons)
}
