// Package csp implements weighted local constraint satisfaction problems
// (factor graphs) as defined in §2.2 of the paper: a collection C of
// constraints c = (f_c, S_c), where f_c : [q]^{S_c} → R≥0 is a non-negative
// constraint function with scope S_c ⊆ V, plus per-vertex activities. A
// configuration σ ∈ [q]^V has weight
//
//	w(σ) = Π_{c∈C} f_c(σ|_{S_c}) · Π_v b_v(σ_v),
//
// and the Gibbs distribution is proportional to w. Boolean-valued f_c give
// the uniform distribution over CSP solutions. MRFs are the special case of
// unary and binary symmetric constraints.
//
// The package also implements the hypergraph generalizations of both chains
// described in the paper's remarks:
//
//   - LubyGlauber over CSPs (§3 remark): the neighborhood is overridden to
//     Γ(v) = {u ≠ v : ∃c, {u,v} ⊆ S_c} and the Luby step selects a strongly
//     independent set of the constraint hypergraph.
//   - LocalMetropolis over CSPs (§4 remark): a k-ary constraint passes its
//     check with probability Π f̃_c(τ) over the 2^k − 1 mixings τ of the
//     proposals σ_{S_c} with the current values X_{S_c}, excluding X_{S_c}
//     itself.
package csp

import (
	"fmt"
	"math"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// Constraint is a weighted local constraint (f_c, S_c). F must be
// non-negative, and its maximum over [q]^|Scope| must be positive; Norm
// must be set to that maximum (New computes it).
type Constraint struct {
	// Scope lists the distinct vertices the constraint reads, in a fixed
	// order matching F's argument order.
	Scope []int32
	// F evaluates the constraint on values aligned with Scope.
	F func(vals []int) float64
	// Norm is max F, filled in by New; F/Norm is the normalized factor f̃_c.
	Norm float64
}

// CSP is a weighted local CSP over n vertices with spin domain [q].
type CSP struct {
	N int
	Q int
	// VertexB[v] is the vertex activity (length Q, non-negative, positive
	// total mass).
	VertexB [][]float64
	Cons    []Constraint
	// vcons[v] lists the constraint indices whose scope contains v.
	vcons [][]int32
	// nbr[v] is the hypergraph neighborhood Γ(v) (distinct, sorted).
	nbr [][]int32
}

// New validates and assembles a CSP. It evaluates each constraint over its
// full domain to compute the normalizing maximum, so constraint arities must
// stay small (q^arity is enumerated); the paper's local CSPs have
// constant-diameter scopes, hence constant arity on bounded-degree graphs.
func New(n, q int, vertexB [][]float64, cons []Constraint) (*CSP, error) {
	if n < 1 || q < 2 {
		return nil, fmt.Errorf("csp: need n >= 1 and q >= 2, got n=%d q=%d", n, q)
	}
	if len(vertexB) != n {
		return nil, fmt.Errorf("csp: %d vertex activities for %d vertices", len(vertexB), n)
	}
	for v, b := range vertexB {
		if len(b) != q {
			return nil, fmt.Errorf("csp: vertex %d activity has length %d, want %d", v, len(b), q)
		}
		total := 0.0
		for _, x := range b {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("csp: vertex %d activity entry invalid: %v", v, x)
			}
			total += x
		}
		if total <= 0 {
			return nil, fmt.Errorf("csp: vertex %d activity has zero mass", v)
		}
	}
	c := &CSP{N: n, Q: q, VertexB: vertexB, Cons: make([]Constraint, len(cons))}
	copy(c.Cons, cons)
	for i := range c.Cons {
		con := &c.Cons[i]
		if len(con.Scope) == 0 {
			return nil, fmt.Errorf("csp: constraint %d has empty scope", i)
		}
		seen := map[int32]bool{}
		for _, v := range con.Scope {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("csp: constraint %d scope vertex %d out of range", i, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("csp: constraint %d has duplicate scope vertex %d", i, v)
			}
			seen[v] = true
		}
		norm, err := maxOverDomain(con.F, len(con.Scope), q)
		if err != nil {
			return nil, fmt.Errorf("csp: constraint %d: %w", i, err)
		}
		if norm <= 0 {
			return nil, fmt.Errorf("csp: constraint %d is identically zero", i)
		}
		con.Norm = norm
	}
	c.buildIndexes()
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(n, q int, vertexB [][]float64, cons []Constraint) *CSP {
	c, err := New(n, q, vertexB, cons)
	if err != nil {
		panic(err)
	}
	return c
}

func maxOverDomain(f func([]int) float64, arity, q int) (float64, error) {
	if arity > 12 {
		return 0, fmt.Errorf("arity %d too large to normalize", arity)
	}
	vals := make([]int, arity)
	total := 1
	for i := 0; i < arity; i++ {
		total *= q
		if total > 1<<24 {
			return 0, fmt.Errorf("domain q^%d too large to normalize", arity)
		}
	}
	best := math.Inf(-1)
	for s := 0; s < total; s++ {
		t := s
		for i := 0; i < arity; i++ {
			vals[i] = t % q
			t /= q
		}
		w := f(vals)
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, fmt.Errorf("constraint value invalid: %v", w)
		}
		if w > best {
			best = w
		}
	}
	return best, nil
}

func (c *CSP) buildIndexes() {
	c.vcons = make([][]int32, c.N)
	nbrSets := make([]map[int32]struct{}, c.N)
	for v := range nbrSets {
		nbrSets[v] = map[int32]struct{}{}
	}
	for i, con := range c.Cons {
		for _, v := range con.Scope {
			c.vcons[v] = append(c.vcons[v], int32(i))
			for _, u := range con.Scope {
				if u != v {
					nbrSets[v][u] = struct{}{}
				}
			}
		}
	}
	c.nbr = make([][]int32, c.N)
	for v, set := range nbrSets {
		lst := make([]int32, 0, len(set))
		for u := range set {
			lst = append(lst, u)
		}
		sortInt32(lst)
		c.nbr[v] = lst
	}
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Neighborhood returns the hypergraph neighborhood Γ(v) (§3 remark). The
// caller must not modify it.
func (c *CSP) Neighborhood(v int) []int32 { return c.nbr[v] }

// ConstraintsOf returns the indices of the constraints containing v. The
// caller must not modify it.
func (c *CSP) ConstraintsOf(v int) []int32 { return c.vcons[v] }

// Weight returns w(σ).
func (c *CSP) Weight(sigma []int) float64 {
	w := 1.0
	buf := make([]int, 8)
	for i := range c.Cons {
		con := &c.Cons[i]
		w *= c.eval(con, sigma, &buf)
		if w == 0 {
			return 0
		}
	}
	for v := 0; v < c.N; v++ {
		w *= c.VertexB[v][sigma[v]]
		if w == 0 {
			return 0
		}
	}
	return w
}

// Feasible reports whether w(σ) > 0.
func (c *CSP) Feasible(sigma []int) bool { return c.Weight(sigma) > 0 }

func (c *CSP) eval(con *Constraint, sigma []int, buf *[]int) float64 {
	if cap(*buf) < len(con.Scope) {
		*buf = make([]int, len(con.Scope))
	}
	vals := (*buf)[:len(con.Scope)]
	for i, v := range con.Scope {
		vals[i] = sigma[v]
	}
	return con.F(vals)
}

// MarginalInto fills out with the conditional marginal of v given the rest
// of sigma: µ_v(a | σ_{V∖v}) ∝ b_v(a) · Π_{c ∋ v} f_c(σ with σ_v = a).
// Returns false when the total mass is zero.
func (c *CSP) MarginalInto(v int, sigma []int, out []float64) bool {
	saved := sigma[v]
	defer func() { sigma[v] = saved }()
	buf := make([]int, 8)
	total := 0.0
	for a := 0; a < c.Q; a++ {
		w := c.VertexB[v][a]
		if w > 0 {
			sigma[v] = a
			for _, ci := range c.vcons[v] {
				w *= c.eval(&c.Cons[ci], sigma, &buf)
				if w == 0 {
					break
				}
			}
		}
		out[a] = w
		total += w
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
	return true
}

// CheckProb returns the LocalMetropolis pass probability of constraint ci
// (§4 remark): the product of the normalized factors f̃_c(τ) over the
// 2^k − 1 vectors τ obtained by replacing each subset of scope positions of
// the proposal vector prop with the current vector cur — every mixing except
// cur itself.
func (c *CSP) CheckProb(ci int, cur, prop []int) float64 {
	con := &c.Cons[ci]
	k := len(con.Scope)
	curV := make([]int, k)
	propV := make([]int, k)
	for i, v := range con.Scope {
		curV[i] = cur[v]
		propV[i] = prop[v]
	}
	tau := make([]int, k)
	p := 1.0
	// mask bit i set means position i takes the current value; the all-ones
	// mask is the excluded X_{S_c}.
	for mask := 0; mask < (1<<k)-1; mask++ {
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				tau[i] = curV[i]
			} else {
				tau[i] = propV[i]
			}
		}
		p *= con.F(tau) / con.Norm
		if p == 0 {
			return 0
		}
	}
	return p
}

// ProposalDistInto fills out with the normalized vertex activity of v.
func (c *CSP) ProposalDistInto(v int, out []float64) {
	total := 0.0
	for a := 0; a < c.Q; a++ {
		out[a] = c.VertexB[v][a]
		total += out[a]
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
}

// --- Chains over CSPs -------------------------------------------------

// Sampler runs the hypergraph chains on a CSP. Create one with NewSampler;
// it owns its configuration and scratch space.
type Sampler struct {
	C *CSP
	X []int
	r *rng.Source

	beta  []float64
	marg  []float64
	prop  []int
	pass  []bool
	coins []float64
}

// NewSampler returns a Sampler with the given initial configuration (copied)
// and seed.
func NewSampler(c *CSP, init []int, seed uint64) *Sampler {
	if len(init) != c.N {
		panic("csp: initial configuration has wrong length")
	}
	s := &Sampler{
		C:     c,
		X:     append([]int(nil), init...),
		r:     rng.New(seed),
		beta:  make([]float64, c.N),
		marg:  make([]float64, c.Q),
		prop:  make([]int, c.N),
		pass:  make([]bool, len(c.Cons)),
		coins: make([]float64, len(c.Cons)),
	}
	return s
}

// GlauberStep performs one single-site heat-bath update at a uniformly
// random vertex (the sequential baseline).
func (s *Sampler) GlauberStep() {
	v := s.r.Intn(s.C.N)
	if s.C.MarginalInto(v, s.X, s.marg) {
		s.X[v] = s.r.Categorical(s.marg)
	}
}

// LubyGlauberStep performs one round of the hypergraph LubyGlauber chain:
// every vertex draws β_v ∈ [0,1]; vertices that are strict local maxima over
// their hypergraph neighborhood Γ(v) form a strongly independent set and
// resample from their conditional marginals simultaneously.
func (s *Sampler) LubyGlauberStep() {
	c := s.C
	for v := 0; v < c.N; v++ {
		s.beta[v] = s.r.Float64()
	}
	// Strongly independent vertices never share a constraint, so no updated
	// vertex reads another updated vertex: in-place resampling is exact.
	for v := 0; v < c.N; v++ {
		isMax := true
		for _, u := range c.nbr[v] {
			if s.beta[u] >= s.beta[v] {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		if c.MarginalInto(v, s.X, s.marg) {
			s.X[v] = s.r.Categorical(s.marg)
		}
	}
}

// LocalMetropolisStep performs one round of the CSP LocalMetropolis chain:
// all vertices propose independently from their normalized activities, each
// constraint passes its check with probability CheckProb, and a vertex
// accepts its proposal iff all constraints containing it pass.
func (s *Sampler) LocalMetropolisStep() {
	c := s.C
	for v := 0; v < c.N; v++ {
		c.ProposalDistInto(v, s.marg)
		s.prop[v] = s.r.Categorical(s.marg)
	}
	for ci := range c.Cons {
		s.coins[ci] = s.r.Float64()
		s.pass[ci] = s.coins[ci] < c.CheckProb(ci, s.X, s.prop)
	}
	for v := 0; v < c.N; v++ {
		ok := true
		for _, ci := range c.vcons[v] {
			if !s.pass[ci] {
				ok = false
				break
			}
		}
		if ok {
			s.X[v] = s.prop[v]
		}
	}
}

// --- PRF-keyed rounds ----------------------------------------------------

// PRF key tags for the deterministic round functions (distinct from the
// chains package tags so MRF and CSP streams never collide).
const (
	TagBeta   = 0x3001
	TagUpdate = 0x3002
	TagCoin   = 0x3003
)

// LubyGlauberRoundPRF advances x by one hypergraph LubyGlauber round with
// randomness derived from (seed, round) — the replayable form used by the
// distributed protocol in internal/dist. Winners are strict local maxima of
// β over the hypergraph neighborhood; because winners are strongly
// independent (no two share a constraint), in-place resampling is exact.
func LubyGlauberRoundPRF(c *CSP, x []int, seed uint64, round int, marg []float64) {
	n := c.N
	beta := make([]float64, n)
	for v := 0; v < n; v++ {
		beta[v] = rng.PRFFloat64(seed, TagBeta, uint64(v), uint64(round))
	}
	for v := 0; v < n; v++ {
		isMax := true
		for _, u := range c.nbr[v] {
			if beta[u] >= beta[v] {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		if c.MarginalInto(v, x, marg) {
			u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
			x[v] = rng.CategoricalU(marg, u)
		}
	}
}

// LocalMetropolisRoundPRF advances x by one CSP LocalMetropolis round with
// PRF randomness: proposals keyed by (TagUpdate, v, round), constraint coins
// by (TagCoin, constraint, round).
func LocalMetropolisRoundPRF(c *CSP, x []int, seed uint64, round int, marg []float64, prop []int, pass []bool) {
	n := c.N
	for v := 0; v < n; v++ {
		c.ProposalDistInto(v, marg)
		u := rng.PRFFloat64(seed, TagUpdate, uint64(v), uint64(round))
		prop[v] = rng.CategoricalU(marg, u)
	}
	for ci := range c.Cons {
		coin := rng.PRFFloat64(seed, TagCoin, uint64(ci), uint64(round))
		pass[ci] = coin < c.CheckProb(ci, x, prop)
	}
	for v := 0; v < n; v++ {
		ok := true
		for _, ci := range c.vcons[v] {
			if !pass[ci] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = prop[v]
		}
	}
}

// --- Models ------------------------------------------------------------

// DominatingSet returns the uniform distribution over dominating sets of g
// (spin 1 = in the set): one "cover" constraint per inclusive neighborhood
// Γ⁺(v) requiring at least one chosen vertex (§2.2, "Dominating sets").
func DominatingSet(g *graph.Graph) *CSP {
	return WeightedDominatingSet(g, 1)
}

// WeightedDominatingSet is DominatingSet with weight λ^|S| on set S.
func WeightedDominatingSet(g *graph.Graph, lambda float64) *CSP {
	n := g.N()
	cons := make([]Constraint, 0, n)
	for v := 0; v < n; v++ {
		scope := make([]int32, 0, g.Deg(v)+1)
		scope = append(scope, int32(v))
		scope = append(scope, g.SimpleNeighbors(v)...)
		cons = append(cons, Constraint{
			Scope: scope,
			F: func(vals []int) float64 {
				for _, x := range vals {
					if x == 1 {
						return 1
					}
				}
				return 0
			},
		})
	}
	b := make([][]float64, n)
	vec := []float64{1, lambda}
	for i := range b {
		b[i] = vec
	}
	return MustNew(n, 2, b, cons)
}

// NotAllEqual returns the uniform distribution over [q]^V configurations in
// which no listed scope is monochromatic (hypergraph coloring / NAE-SAT
// style constraints).
func NotAllEqual(n, q int, scopes [][]int32) *CSP {
	cons := make([]Constraint, 0, len(scopes))
	for _, sc := range scopes {
		cons = append(cons, Constraint{
			Scope: sc,
			F: func(vals []int) float64 {
				for _, x := range vals[1:] {
					if x != vals[0] {
						return 1
					}
				}
				return 0
			},
		})
	}
	b := make([][]float64, n)
	ones := make([]float64, q)
	for i := range ones {
		ones[i] = 1
	}
	for i := range b {
		b[i] = ones
	}
	return MustNew(n, q, b, cons)
}

// FromMRF converts an MRF-style model into an equivalent CSP: one binary
// constraint per edge. Both chains on the CSP must then agree with their MRF
// counterparts — the cross-validation used in the E10 experiments.
func FromMRF(g *graph.Graph, q int, edgeF func(edgeID int, a, b int) float64, vertexB [][]float64) *CSP {
	cons := make([]Constraint, 0, g.M())
	for id, e := range g.Edges() {
		id := id
		cons = append(cons, Constraint{
			Scope: []int32{e.U, e.V},
			F: func(vals []int) float64 {
				return edgeF(id, vals[0], vals[1])
			},
		})
	}
	return MustNew(g.N(), q, vertexB, cons)
}
