package csp

// Round-kernel benchmarks: the rebuilt kernels against the seed-era
// references kept in kernels_ref_test.go, plus the steady-state allocation
// gate — one CSP round must allocate nothing.

import (
	"testing"

	"locsample/internal/graph"
)

func benchDomset(b *testing.B) (*CSP, []int) {
	b.Helper()
	c := DominatingSet(graph.Grid(64, 64))
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	return c, init
}

func benchNAE(b *testing.B) (*CSP, []int) {
	b.Helper()
	const n = 4096
	scopes := make([][]int32, n)
	for i := range scopes {
		scopes[i] = []int32{int32(i), int32((i + 1) % n), int32((i + 2) % n)}
	}
	c := NotAllEqual(n, 3, scopes)
	init := make([]int, n)
	for i := range init {
		init[i] = i % 3
	}
	return c, init
}

func BenchmarkCSPLubyGlauberRound(b *testing.B) {
	for _, w := range []struct {
		name  string
		build func(*testing.B) (*CSP, []int)
	}{{"domset-grid64x64", benchDomset}, {"nae4096-q3", benchNAE}} {
		c, init := w.build(b)
		b.Run(w.name+"/new", func(b *testing.B) {
			x := append([]int(nil), init...)
			sc := NewScratch(c)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				LubyGlauberRoundPRF(c, x, 1, i, sc)
			}
		})
		b.Run(w.name+"/ref", func(b *testing.B) {
			x := append([]int(nil), init...)
			marg := make([]float64, c.Q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refLubyGlauberRoundPRF(c, x, 1, i, marg)
			}
		})
	}
}

func BenchmarkCSPLocalMetropolisRound(b *testing.B) {
	for _, w := range []struct {
		name  string
		build func(*testing.B) (*CSP, []int)
	}{{"domset-grid64x64", benchDomset}, {"nae4096-q3", benchNAE}} {
		c, init := w.build(b)
		b.Run(w.name+"/new", func(b *testing.B) {
			x := append([]int(nil), init...)
			sc := NewScratch(c)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				LocalMetropolisRoundPRF(c, x, 1, i, sc)
			}
		})
		b.Run(w.name+"/ref", func(b *testing.B) {
			x := append([]int(nil), init...)
			marg := make([]float64, c.Q)
			prop := make([]int, c.N)
			pass := make([]bool, len(c.Cons))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refLocalMetropolisRoundPRF(c, x, 1, i, marg, prop, pass)
			}
		})
	}
}

// TestCSPRoundsAllocFree is the steady-state allocation gate: with scratch
// compiled, neither round kernel may allocate — the serving path runs one
// of these per chain per round.
func TestCSPRoundsAllocFree(t *testing.T) {
	c := DominatingSet(graph.Grid(16, 16))
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	x := append([]int(nil), init...)
	sc := NewScratch(c)
	round := 0
	if n := testing.AllocsPerRun(20, func() {
		LubyGlauberRoundPRF(c, x, 1, round, sc)
		round++
	}); n != 0 {
		t.Fatalf("LubyGlauberRoundPRF allocates %v per round, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		LocalMetropolisRoundPRF(c, x, 1, round, sc)
		round++
	}); n != 0 {
		t.Fatalf("LocalMetropolisRoundPRF allocates %v per round, want 0", n)
	}
}
