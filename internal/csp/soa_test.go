package csp

import (
	"testing"

	"locsample/internal/rng"
)

// TestCSPSoARoundsMatchSequential pins the CSP block engine's determinism
// contract: lane i of an SoA block reproduces LubyGlauberRoundPRF at seed
// seeds[i] bit-for-bit, at every tested width, across every kernel test
// CSP (tabulated constraints of mixed arity, closure fallbacks, soft
// activities).
func TestCSPSoARoundsMatchSequential(t *testing.T) {
	const rounds = 20
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range []int{1, 3, 8, 33} {
				seeds := make([]uint64, w)
				for i := range seeds {
					seeds[i] = rng.PRF(99, uint64(i))
				}
				blk := NewSoABlock(tc.c, w)
				blk.Reset(tc.init, seeds)
				for r := 0; r < rounds; r++ {
					blk.Step()
				}
				got := make([][]int, w)
				for i := range got {
					got[i] = make([]int, tc.c.N)
				}
				blk.Scatter(got)
				sc := NewScratch(tc.c)
				for i, seed := range seeds {
					ref := append([]int(nil), tc.init...)
					for r := 0; r < rounds; r++ {
						LubyGlauberRoundPRF(tc.c, ref, seed, r, sc)
					}
					for v := range ref {
						if got[i][v] != ref[v] {
							t.Fatalf("w=%d lane=%d: diverges from LubyGlauberRoundPRF at variable %d", w, i, v)
						}
					}
				}
			}
		})
	}
}

// TestCSPSoABlockStepAllocFree gates the CSP block hot path at zero
// allocations per round.
func TestCSPSoABlockStepAllocFree(t *testing.T) {
	for _, tc := range kernelTestCSPs(t) {
		t.Run(tc.name, func(t *testing.T) {
			seeds := make([]uint64, 8)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			blk := NewSoABlock(tc.c, 8)
			blk.Reset(tc.init, seeds)
			if n := testing.AllocsPerRun(20, func() { blk.Step() }); n != 0 {
				t.Fatalf("SoA Step allocates %v/round, want 0", n)
			}
		})
	}
}

// TestCSPSoABlockReuse: a block rewound at a narrower width reproduces
// fresh-block trajectories (no stale lane state).
func TestCSPSoABlockReuse(t *testing.T) {
	tc := kernelTestCSPs(t)[0]
	blk := NewSoABlock(tc.c, 16)
	for _, w := range []int{16, 4, 9} {
		seeds := make([]uint64, w)
		for i := range seeds {
			seeds[i] = rng.PRF(3, uint64(w), uint64(i))
		}
		blk.Reset(tc.init, seeds)
		for r := 0; r < 10; r++ {
			blk.Step()
		}
		got := make([][]int, w)
		for i := range got {
			got[i] = make([]int, tc.c.N)
		}
		blk.Scatter(got)
		sc := NewScratch(tc.c)
		for i, seed := range seeds {
			ref := append([]int(nil), tc.init...)
			for r := 0; r < 10; r++ {
				LubyGlauberRoundPRF(tc.c, ref, seed, r, sc)
			}
			for v := range ref {
				if got[i][v] != ref[v] {
					t.Fatalf("reused block at w=%d lane=%d diverges at variable %d", w, i, v)
				}
			}
		}
	}
}
