package csp

import (
	"math"
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func uniformB(n, q int) [][]float64 {
	b := make([][]float64, n)
	ones := make([]float64, q)
	for i := range ones {
		ones[i] = 1
	}
	for i := range b {
		b[i] = ones
	}
	return b
}

func TestNewValidation(t *testing.T) {
	okCon := Constraint{Scope: []int32{0, 1}, F: func(v []int) float64 { return 1 }}
	if _, err := New(0, 2, nil, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(2, 1, uniformB(2, 1), nil); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := New(2, 2, uniformB(3, 2), nil); err == nil {
		t.Error("wrong activity count accepted")
	}
	if _, err := New(2, 2, uniformB(2, 2), []Constraint{{Scope: nil, F: okCon.F}}); err == nil {
		t.Error("empty scope accepted")
	}
	if _, err := New(2, 2, uniformB(2, 2), []Constraint{{Scope: []int32{0, 0}, F: okCon.F}}); err == nil {
		t.Error("duplicate scope vertex accepted")
	}
	if _, err := New(2, 2, uniformB(2, 2), []Constraint{{Scope: []int32{0, 5}, F: okCon.F}}); err == nil {
		t.Error("out-of-range scope accepted")
	}
	zero := Constraint{Scope: []int32{0}, F: func(v []int) float64 { return 0 }}
	if _, err := New(2, 2, uniformB(2, 2), []Constraint{zero}); err == nil {
		t.Error("identically-zero constraint accepted")
	}
	neg := Constraint{Scope: []int32{0}, F: func(v []int) float64 { return -1 }}
	if _, err := New(2, 2, uniformB(2, 2), []Constraint{neg}); err == nil {
		t.Error("negative constraint accepted")
	}
	if _, err := New(2, 2, uniformB(2, 2), []Constraint{okCon}); err != nil {
		t.Errorf("valid CSP rejected: %v", err)
	}
}

func TestNormComputed(t *testing.T) {
	c := MustNew(2, 3, uniformB(2, 3), []Constraint{{
		Scope: []int32{0, 1},
		F:     func(v []int) float64 { return float64(v[0] + v[1]) },
	}})
	if c.Cons[0].Norm != 4 {
		t.Fatalf("Norm=%v, want 4", c.Cons[0].Norm)
	}
}

func TestDominatingSetWeights(t *testing.T) {
	g := graph.Path(4)
	c := DominatingSet(g)
	sigma := make([]int, 4)
	for s := 0; s < 16; s++ {
		for i := range sigma {
			sigma[i] = (s >> i) & 1
		}
		want := g.IsDominatingSet(sigma)
		if got := c.Feasible(sigma); got != want {
			t.Fatalf("dominating-set feasibility mismatch at %v: got %v want %v", sigma, got, want)
		}
	}
}

func TestWeightedDominatingSet(t *testing.T) {
	g := graph.Path(3)
	c := WeightedDominatingSet(g, 2)
	// {0,1,0} is dominating with one occupied vertex: weight 2.
	if w := c.Weight([]int{0, 1, 0}); w != 2 {
		t.Fatalf("weight %v, want 2", w)
	}
	if w := c.Weight([]int{1, 1, 1}); w != 8 {
		t.Fatalf("weight %v, want 8", w)
	}
	if w := c.Weight([]int{1, 0, 0}); w != 0 {
		t.Fatalf("non-dominating weight %v, want 0", w)
	}
}

func TestHypergraphNeighborhood(t *testing.T) {
	// Dominating set on a path 0-1-2-3: constraint scopes are
	// Γ+(0)={0,1}, Γ+(1)={1,0,2}, Γ+(2)={2,1,3}, Γ+(3)={3,2}.
	// Hypergraph neighborhood of 0 is {1,2}: it shares a constraint with 2
	// via Γ+(1).
	c := DominatingSet(graph.Path(4))
	nbr := c.Neighborhood(0)
	if len(nbr) != 2 || nbr[0] != 1 || nbr[1] != 2 {
		t.Fatalf("Γ(0) = %v, want [1 2]", nbr)
	}
	nbr1 := c.Neighborhood(1)
	if len(nbr1) != 3 {
		t.Fatalf("Γ(1) = %v, want 3 vertices", nbr1)
	}
}

func TestMarginal(t *testing.T) {
	g := graph.Path(3)
	c := DominatingSet(g)
	out := make([]float64, 2)
	// With X = {1, 0, ?}: vertex 2's options: X2=0 gives {1,0,0} which fails
	// (vertex 2 not dominated: Γ+(2)={2,1} both 0). X2=1 gives {1,0,1},
	// dominating. So marginal at 2 is (0, 1).
	x := []int{1, 0, 0}
	if !c.MarginalInto(2, x, out) {
		t.Fatal("marginal undefined")
	}
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("marginal %v, want [0 1]", out)
	}
	// MarginalInto must restore sigma[v].
	if x[2] != 0 {
		t.Fatal("MarginalInto mutated sigma")
	}
}

func TestCheckProbMatchesMRF(t *testing.T) {
	// For a binary constraint the 2^k−1 = 3 mixings are (σu,σv), (Xu,σv),
	// (σu,Xv) — exactly the MRF LocalMetropolis filter (Algorithm 2).
	g := graph.Path(2)
	m := mrf.Coloring(g, 3)
	c := FromMRF(g, 3, func(id, a, b int) float64 {
		return m.EdgeA[id].At(a, b)
	}, uniformB(2, 3))

	for xu := 0; xu < 3; xu++ {
		for xv := 0; xv < 3; xv++ {
			for su := 0; su < 3; su++ {
				for sv := 0; sv < 3; sv++ {
					want := m.EdgeCheckProb(0, xu, xv, su, sv)
					got := c.CheckProb(0, []int{xu, xv}, []int{su, sv})
					if math.Abs(got-want) > 1e-15 {
						t.Fatalf("CheckProb(X=%d,%d σ=%d,%d) = %v, want %v", xu, xv, su, sv, got, want)
					}
				}
			}
		}
	}
}

func TestCheckProbTernary(t *testing.T) {
	// Ternary soft constraint: verify the 7-factor product by hand.
	f := func(v []int) float64 {
		// Soft NAE on {0,1}^3 with weight 0.5 for monochromatic.
		if v[0] == v[1] && v[1] == v[2] {
			return 0.5
		}
		return 1
	}
	c := MustNew(3, 2, uniformB(3, 2), []Constraint{{Scope: []int32{0, 1, 2}, F: f}})
	cur := []int{0, 0, 0}
	prop := []int{1, 1, 1}
	// Mixings (mask over scope positions taking current value), excluding
	// all-current: masks 0..6. mask 0 → (1,1,1): 0.5. masks 1..6: mixed
	// vectors, each has both a 0 and a 1 → 1. So product = 0.5.
	if got := c.CheckProb(0, cur, prop); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("ternary CheckProb = %v, want 0.5", got)
	}
	// prop = cur: every mixing is (0,0,0) with weight 0.5 → 0.5^7.
	if got := c.CheckProb(0, cur, cur); math.Abs(got-math.Pow(0.5, 7)) > 1e-15 {
		t.Fatalf("ternary CheckProb = %v, want 0.5^7", got)
	}
}

func TestNotAllEqual(t *testing.T) {
	c := NotAllEqual(3, 2, [][]int32{{0, 1, 2}})
	if c.Feasible([]int{0, 0, 0}) || c.Feasible([]int{1, 1, 1}) {
		t.Fatal("monochromatic configuration accepted")
	}
	if !c.Feasible([]int{0, 1, 0}) {
		t.Fatal("valid NAE configuration rejected")
	}
}

func TestGlauberStepPreservesFeasibility(t *testing.T) {
	g := graph.Cycle(6)
	c := DominatingSet(g)
	s := NewSampler(c, []int{1, 1, 1, 1, 1, 1}, 42)
	for i := 0; i < 500; i++ {
		s.GlauberStep()
		if !c.Feasible(s.X) {
			t.Fatalf("infeasible after %d Glauber steps: %v", i, s.X)
		}
	}
}

func TestLubyGlauberStepPreservesFeasibility(t *testing.T) {
	g := graph.Grid(3, 3)
	c := DominatingSet(g)
	init := make([]int, 9)
	for i := range init {
		init[i] = 1
	}
	s := NewSampler(c, init, 7)
	for i := 0; i < 300; i++ {
		s.LubyGlauberStep()
		if !c.Feasible(s.X) {
			t.Fatalf("infeasible after %d LubyGlauber rounds: %v", i, s.X)
		}
	}
}

func TestLocalMetropolisStepPreservesFeasibility(t *testing.T) {
	g := graph.Grid(3, 3)
	c := DominatingSet(g)
	init := make([]int, 9)
	for i := range init {
		init[i] = 1
	}
	s := NewSampler(c, init, 11)
	for i := 0; i < 300; i++ {
		s.LocalMetropolisStep()
		if !c.Feasible(s.X) {
			t.Fatalf("infeasible after %d LocalMetropolis rounds: %v", i, s.X)
		}
	}
}

func TestSamplerVisitsManyStates(t *testing.T) {
	// Sanity: the chains actually move around the solution space.
	g := graph.Cycle(5)
	c := DominatingSet(g)
	init := []int{1, 1, 1, 1, 1}
	for name, step := range map[string]func(*Sampler){
		"glauber":         (*Sampler).GlauberStep,
		"lubyglauber":     (*Sampler).LubyGlauberStep,
		"localmetropolis": (*Sampler).LocalMetropolisStep,
	} {
		s := NewSampler(c, init, 13)
		seen := map[[5]int]bool{}
		for i := 0; i < 2000; i++ {
			step(s)
			var key [5]int
			copy(key[:], s.X)
			seen[key] = true
		}
		// C5 has 11 dominating sets of size >= 2... at minimum many states.
		if len(seen) < 5 {
			t.Errorf("%s: visited only %d states", name, len(seen))
		}
	}
}

func TestNewSamplerCopiesInit(t *testing.T) {
	c := DominatingSet(graph.Path(3))
	init := []int{1, 1, 1}
	s := NewSampler(c, init, 1)
	s.X[0] = 0
	if init[0] != 1 {
		t.Fatal("NewSampler aliased the initial configuration")
	}
}
