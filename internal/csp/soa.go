// Structure-of-arrays multi-chain round engine for the hypergraph
// LubyGlauber kernel: the CSP analogue of chains.SoABlock (csp cannot
// import chains — see betaLocalMax — so the block is mirrored here with
// the hypergraph walk substituted for the CSR walk).
//
// Chain state is stored [variable][chain] — lane c's value at variable v
// is x[v*W+c] in a flat []int32 — so one pass over the constraint
// incidence evaluates every lane's Luby membership and compiled-table
// marginal with contiguous loads. The expensive per-marginal work,
// hoisting each incident constraint's mixed-radix base index, is where
// batching pays most here: the scope walk that computes it touches the
// same scopeV/conTab rows for every chain, and the SoA block re-walks
// them with the indices hot in cache W times back-to-back instead of
// once per chain per full-batch pass.
//
// Lane c reproduces LubyGlauberRoundPRF at seed seeds[c] bit-for-bit at
// every width: every variate is PRF(seed_c, tag, v, round), and the lane
// marginal (marginalLaneInto) mirrors marginalInto's hoisting,
// ascending-constraint multiplication order, and zero-short-circuit
// exactly, reading lane-strided state instead of a flat configuration.
package csp

import (
	"fmt"
	"math/bits"

	"locsample/internal/rng"
)

// MaxBatchWidth is the widest SoA block; lane sets are uint64 bitmasks.
const MaxBatchWidth = 64

// SoABlock advances up to MaxBatchWidth LubyGlauber chains of one CSP in
// lockstep. All buffers are allocated at construction; steady-state
// rounds allocate nothing (alloc-gated). The caller drives rounds via
// Step — abort polling and round observation live in the engine layer,
// as they do for the per-chain runChain.
type SoABlock struct {
	C *CSP

	maxW  int
	w     int
	seeds []uint64
	round int

	x    []int32   // [n*w] lane state, x[v*w+c]
	beta []float64 // [n*w] lane Luby priorities
	marg []float64 // one marginal row, reused lane-sequentially
	kb   []rng.RoundKey
	ku   []rng.RoundKey
	ms   margScratch
}

// NewSoABlock returns a block for up to maxW chains of c.
func NewSoABlock(c *CSP, maxW int) *SoABlock {
	if maxW < 1 || maxW > MaxBatchWidth {
		panic(fmt.Sprintf("csp: SoA block width must be in [1,%d], got %d", MaxBatchWidth, maxW))
	}
	return &SoABlock{
		C:     c,
		maxW:  maxW,
		seeds: make([]uint64, maxW),
		x:     make([]int32, c.N*maxW),
		beta:  make([]float64, c.N*maxW),
		marg:  make([]float64, c.Q),
		kb:    make([]rng.RoundKey, maxW),
		ku:    make([]rng.RoundKey, maxW),
		ms:    newMargScratch(c),
	}
}

// Width returns the lane count of the current run.
func (b *SoABlock) Width() int { return b.w }

// MaxWidth returns the construction width — the widest run the block's
// buffers can serve. The engine's block pool is grow-only on this.
func (b *SoABlock) MaxWidth() int { return b.maxW }

// Round returns the number of rounds taken since Reset.
func (b *SoABlock) Round() int { return b.round }

// Reset rewinds the block to round 0 with len(seeds) active lanes, every
// lane starting from init. Lanes are packed at stride len(seeds) so tail
// blocks narrower than the construction width stay dense.
func (b *SoABlock) Reset(init []int, seeds []uint64) {
	c := b.C
	if len(init) != c.N {
		panic("csp: initial configuration has wrong length")
	}
	if len(seeds) < 1 || len(seeds) > b.maxW {
		panic(fmt.Sprintf("csp: SoA lane count must be in [1,%d], got %d", b.maxW, len(seeds)))
	}
	w := len(seeds)
	b.w = w
	copy(b.seeds[:w], seeds)
	b.round = 0
	for v := 0; v < c.N; v++ {
		xv := int32(init[v])
		row := b.x[v*w : v*w+w]
		for i := range row {
			row[i] = xv
		}
	}
}

// Scatter copies lane c into dst[c]; each dst[c] must have length N.
func (b *SoABlock) Scatter(dst [][]int) {
	n, w := b.C.N, b.w
	if len(dst) != w {
		panic(fmt.Sprintf("csp: Scatter got %d destinations for %d lanes", len(dst), w))
	}
	for v := 0; v < n; v++ {
		row := b.x[v*w : v*w+w]
		for c, out := range dst {
			out[v] = int(row[c])
		}
	}
}

// Step advances all lanes by one LubyGlauber round: one β fill, one
// hypergraph-neighborhood walk deciding every lane's Luby membership per
// variable, and lane-sequential heat-bath resampling of the winners (the
// winners of each lane are strongly independent, so in-place lane
// updates are exact).
func (b *SoABlock) Step() {
	c, w := b.C, b.w
	n := c.N
	round := uint64(b.round)
	rng.KeysInto(b.kb[:w], b.seeds[:w], TagBeta, round)
	rng.KeysInto(b.ku[:w], b.seeds[:w], TagUpdate, round)
	beta := b.beta
	for v := 0; v < n; v++ {
		row := beta[v*w : v*w+w]
		for i := range row {
			row[i] = b.kb[i].Float64(uint64(v))
		}
	}
	var full uint64
	if w == 64 {
		full = ^uint64(0)
	} else {
		full = (uint64(1) << w) - 1
	}
	for v := 0; v < n; v++ {
		// Luby membership per lane, betaLocalMax's strict tie-break:
		// lane i survives iff beta[v] > beta[u] for every hypergraph
		// neighbor u.
		mask := full
		vrow := beta[v*w : v*w+w]
		for _, u := range c.nbrIdx[c.nbrOff[v]:c.nbrOff[v+1]] {
			urow := beta[int(u)*w : int(u)*w+w]
			rem := mask
			for rem != 0 {
				i := bits.TrailingZeros64(rem)
				rem &= rem - 1
				if urow[i] >= vrow[i] {
					mask &^= 1 << i
				}
			}
			if mask == 0 {
				break
			}
		}
		for mask != 0 {
			i := bits.TrailingZeros64(mask)
			mask &= mask - 1
			if c.marginalLaneInto(b.x, w, i, v, b.marg, &b.ms) {
				b.x[v*w+i] = int32(rng.CategoricalU(b.marg, b.ku[i].Float64(uint64(v))))
			}
		}
	}
	b.round++
}

// marginalLaneInto is marginalInto reading lane-strided state: the
// conditional marginal of v given lane's configuration. Same hoisted
// mixed-radix bases, same ascending-constraint product order, same
// zero-short-circuit — bit-identical weights, with the flat-configuration
// writes (set σ_v = a, restore) replaced by an explicit spin override.
func (c *CSP) marginalLaneInto(x []int32, w, lane, v int, out []float64, ms *margScratch) bool {
	cons := c.vconsIdx[c.vconsOff[v]:c.vconsOff[v+1]]
	b := c.VertexB[v]
	for i, ci := range cons {
		ti := c.conTab[ci]
		if ti < 0 {
			ms.tabs[i] = nil // closure fallback, evaluated per spin below
			continue
		}
		t := c.tabs[ti]
		idx, vstride, stride := 0, 0, 1
		for _, u := range c.scope(ci) {
			if int(u) == v {
				vstride = stride
			} else {
				idx += int(x[int(u)*w+lane]) * stride
			}
			stride *= c.Q
		}
		ms.tabs[i] = t
		ms.base[i] = idx
		ms.stride[i] = vstride
	}
	total := 0.0
	for a := 0; a < c.Q; a++ {
		wgt := b[a]
		if wgt > 0 {
			for i, ci := range cons {
				if t := ms.tabs[i]; t != nil {
					wgt *= t.vals[ms.base[i]+a*ms.stride[i]]
				} else {
					wgt *= c.evalLane(int(ci), x, w, lane, v, a, ms.eval)
				}
				if wgt == 0 {
					break
				}
			}
		}
		out[a] = wgt
		total += wgt
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
	return true
}

// evalLane evaluates non-tabulated constraint ci's closure on lane's
// configuration with σ_v = a: the gather EvalOn performs, reading
// strided lane state with the spin override applied in place of the
// flat-configuration write.
func (c *CSP) evalLane(ci int, x []int32, w, lane, v, a int, buf []int) float64 {
	scope := c.scope(int32(ci))
	vals := buf[:len(scope)]
	for j, p := range scope {
		if int(p) == v {
			vals[j] = a
		} else {
			vals[j] = int(x[int(p)*w+lane])
		}
	}
	return c.Cons[ci].F(vals)
}
