// Round kernels for the hypergraph chains over CSPs, in the style of the
// MRF kernels in internal/chains: randomness streams through partial round
// keys (rng.Key) instead of full per-variate PRF calls, proposals draw from
// precomputed cumulative activity tables (CategoricalCumU), constraint
// evaluation is compiled-table index arithmetic, and every working buffer
// lives in a reusable Scratch — the steady-state rounds allocate nothing.
//
// Each kernel also has a vertex-parallel form: the round's phases
// (β-fill / resample for LubyGlauber; propose / constraint-filter / accept
// for LocalMetropolis) fan over contiguous index ranges with a barrier
// between phases. Bit-identity with the sequential kernels holds at every
// worker count because all randomness is PRF-keyed by global vertex or
// constraint IDs (never visitation order), each phase reads only state
// frozen by the previous barrier, and phase writes are disjoint per index.
// The one in-place phase — LubyGlauber's resample — writes only members of
// the Luby strongly independent set, no two of which share a constraint, so
// no resampled vertex's marginal reads another resampled vertex.
package csp

import (
	"sync"

	"locsample/internal/rng"
)

// PRF key tags for the deterministic round functions (distinct from the
// chains package tags so MRF and CSP streams never collide).
const (
	TagBeta   = 0x3001
	TagUpdate = 0x3002
	TagCoin   = 0x3003
)

// Scratch holds the per-round working buffers shared by the round kernels.
// One Scratch serves one chain at a time; pool them to serve concurrent
// draws.
type Scratch struct {
	beta []float64
	marg []float64
	prop []int
	pass []bool
	// ms is the marginal/fallback scratch (hoisted table indexes plus the
	// closure gather buffer).
	ms margScratch
	// margs[w]/mss[w] are worker w's private buffers for the
	// vertex-parallel phases.
	margs [][]float64
	mss   []margScratch
}

// NewScratch returns buffers sized for CSP c. The LocalMetropolis-only
// buffers (proposals, per-constraint pass bits) are allocated on first use,
// so the LubyGlauber serving path never carries them.
func NewScratch(c *CSP) *Scratch {
	return &Scratch{
		beta: make([]float64, c.N),
		marg: make([]float64, c.Q),
		ms:   newMargScratch(c),
	}
}

// ensureMetropolis sizes the LocalMetropolis buffers.
func (sc *Scratch) ensureMetropolis(c *CSP) {
	if sc.prop == nil {
		sc.prop = make([]int, c.N)
		sc.pass = make([]bool, len(c.Cons))
	}
}

// EnsureParallel sizes the per-worker buffers for the vertex-parallel
// kernels.
func (sc *Scratch) EnsureParallel(c *CSP, workers int) {
	for len(sc.margs) < workers {
		sc.margs = append(sc.margs, make([]float64, c.Q))
		sc.mss = append(sc.mss, newMargScratch(c))
	}
}

// betaLocalMax is the Luby-step membership test over the hypergraph
// neighborhood: beta[v] must strictly exceed beta[u] for every u in nbr.
// It must stay expression-for-expression identical to chains.BetaLocalMax
// (which the sharded CSP runtime uses) — csp cannot import chains without a
// test-only cycle through internal/exact, so the agreement is enforced by
// the golden-trajectory and sharded bit-identity gates instead.
func betaLocalMax(beta []float64, v int, nbr []int32) bool {
	bv := beta[v]
	for _, u := range nbr {
		if beta[u] >= bv {
			return false
		}
	}
	return true
}

// LubyGlauberRoundPRF advances x by one hypergraph LubyGlauber round with
// randomness derived from (seed, round) — the replayable form used by the
// distributed protocol in internal/dist and by every runtime above this
// package. Winners are strict local maxima of β over the hypergraph
// neighborhood; because winners are strongly independent (no two share a
// constraint), in-place resampling is exact.
func LubyGlauberRoundPRF(c *CSP, x []int, seed uint64, round int, sc *Scratch) {
	n := c.N
	beta := sc.beta[:n]
	rng.Key(seed, TagBeta, uint64(round)).FillFloat64s(beta, 0)
	ku := rng.Key(seed, TagUpdate, uint64(round))
	for v := 0; v < n; v++ {
		if !betaLocalMax(beta, v, c.nbrIdx[c.nbrOff[v]:c.nbrOff[v+1]]) {
			continue
		}
		if c.marginalInto(v, x, sc.marg, &sc.ms) {
			x[v] = rng.CategoricalU(sc.marg, ku.Float64(uint64(v)))
		}
	}
}

// LocalMetropolisRoundPRF advances x by one CSP LocalMetropolis round with
// PRF randomness: proposals keyed by (TagUpdate, v, round), constraint coins
// by (TagCoin, constraint, round).
func LocalMetropolisRoundPRF(c *CSP, x []int, seed uint64, round int, sc *Scratch) {
	n := c.N
	sc.ensureMetropolis(c)
	ku := rng.Key(seed, TagUpdate, uint64(round))
	for v := 0; v < n; v++ {
		d := c.propOf[v]
		sc.prop[v] = rng.CategoricalCumU(c.propDist[d], c.propCum[d], ku.Float64(uint64(v)))
	}
	kc := rng.Key(seed, TagCoin, uint64(round))
	constraintFilter(c, x, sc.prop, sc.pass, kc, sc.ms.eval, 0, len(c.Cons))
	applyPassAccept(c, x, sc.prop, sc.pass, 0, n)
}

// constraintFilter runs the LocalMetropolis checks for constraint IDs
// [lo, hi): pass[ci] = coin_ci < CheckProb, with the shared coin streamed
// through the round's TagCoin partial key. The sequential kernel passes the
// full range; the vertex-parallel mode slices it.
func constraintFilter(c *CSP, x, prop []int, pass []bool, kc rng.RoundKey, eval []int, lo, hi int) {
	for ci := lo; ci < hi; ci++ {
		p := c.CheckProbOn(ci, x, prop, c.scope(int32(ci)), eval)
		pass[ci] = kc.Float64(uint64(ci)) < p
	}
}

// applyPassAccept applies the LocalMetropolis acceptance rule over vertices
// [lo, hi): v adopts its proposal iff every constraint containing it passed.
func applyPassAccept(c *CSP, x, prop []int, pass []bool, lo, hi int) {
	for v := lo; v < hi; v++ {
		ok := true
		for t, end := c.vconsOff[v], c.vconsOff[v+1]; t < end; t++ {
			if !pass[c.vconsIdx[t]] {
				ok = false
				break
			}
		}
		if ok {
			x[v] = prop[v]
		}
	}
}

// parallelFor runs fn(w, lo, hi) over a balanced partition of [0, n) into
// contiguous blocks, one goroutine per block, and waits for all of them —
// the phase barrier of the parallel round kernels.
func parallelFor(n, workers int, fn func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// LubyGlauberRoundParallel is LubyGlauberRoundPRF with both phases fanned
// over workers: β-fill (disjoint writes to sc.beta), then membership +
// resample with per-worker marginal scratch. The in-place x writes are
// race-free because the Luby step is strongly independent (see the package
// comment).
func LubyGlauberRoundParallel(c *CSP, x []int, seed uint64, round int, sc *Scratch, workers int) {
	n := c.N
	sc.EnsureParallel(c, workers)
	beta := sc.beta[:n]
	kb := rng.Key(seed, TagBeta, uint64(round))
	parallelFor(n, workers, func(_, lo, hi int) {
		kb.FillFloat64s(beta[lo:hi], uint64(lo))
	})
	ku := rng.Key(seed, TagUpdate, uint64(round))
	parallelFor(n, workers, func(w, lo, hi int) {
		marg, ms := sc.margs[w], &sc.mss[w]
		for v := lo; v < hi; v++ {
			if !betaLocalMax(beta, v, c.nbrIdx[c.nbrOff[v]:c.nbrOff[v+1]]) {
				continue
			}
			if c.marginalInto(v, x, marg, ms) {
				x[v] = rng.CategoricalU(marg, ku.Float64(uint64(v)))
			}
		}
	})
}

// LocalMetropolisRoundParallel is LocalMetropolisRoundPRF with its three
// phases fanned over workers: propose over vertex ranges, constraint-filter
// over constraint-ID ranges, accept over vertex ranges.
func LocalMetropolisRoundParallel(c *CSP, x []int, seed uint64, round int, sc *Scratch, workers int) {
	n := c.N
	sc.ensureMetropolis(c)
	sc.EnsureParallel(c, workers)
	ku := rng.Key(seed, TagUpdate, uint64(round))
	parallelFor(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			d := c.propOf[v]
			sc.prop[v] = rng.CategoricalCumU(c.propDist[d], c.propCum[d], ku.Float64(uint64(v)))
		}
	})
	kc := rng.Key(seed, TagCoin, uint64(round))
	parallelFor(len(c.Cons), workers, func(w, lo, hi int) {
		constraintFilter(c, x, sc.prop, sc.pass, kc, sc.mss[w].eval, lo, hi)
	})
	parallelFor(n, workers, func(_, lo, hi int) {
		applyPassAccept(c, x, sc.prop, sc.pass, lo, hi)
	})
}

// --- Source-driven chains (sequential baselines) -----------------------

// Sampler runs the hypergraph chains on a CSP from a sequential random
// stream. Create one with NewSampler; it owns its configuration and scratch
// space.
type Sampler struct {
	C *CSP
	X []int
	r *rng.Source

	beta  []float64
	marg  []float64
	prop  []int
	pass  []bool
	coins []float64
	ms    margScratch
}

// NewSampler returns a Sampler with the given initial configuration (copied)
// and seed.
func NewSampler(c *CSP, init []int, seed uint64) *Sampler {
	if len(init) != c.N {
		panic("csp: initial configuration has wrong length")
	}
	s := &Sampler{
		C:     c,
		X:     append([]int(nil), init...),
		r:     rng.New(seed),
		beta:  make([]float64, c.N),
		marg:  make([]float64, c.Q),
		prop:  make([]int, c.N),
		pass:  make([]bool, len(c.Cons)),
		coins: make([]float64, len(c.Cons)),
		ms:    newMargScratch(c),
	}
	return s
}

// GlauberStep performs one single-site heat-bath update at a uniformly
// random vertex (the sequential baseline).
func (s *Sampler) GlauberStep() {
	v := s.r.Intn(s.C.N)
	if s.C.marginalInto(v, s.X, s.marg, &s.ms) {
		s.X[v] = s.r.Categorical(s.marg)
	}
}

// LubyGlauberStep performs one round of the hypergraph LubyGlauber chain:
// every vertex draws β_v ∈ [0,1]; vertices that are strict local maxima over
// their hypergraph neighborhood Γ(v) form a strongly independent set and
// resample from their conditional marginals simultaneously.
func (s *Sampler) LubyGlauberStep() {
	c := s.C
	for v := 0; v < c.N; v++ {
		s.beta[v] = s.r.Float64()
	}
	// Strongly independent vertices never share a constraint, so no updated
	// vertex reads another updated vertex: in-place resampling is exact.
	for v := 0; v < c.N; v++ {
		if !betaLocalMax(s.beta, v, c.Neighborhood(v)) {
			continue
		}
		if c.marginalInto(v, s.X, s.marg, &s.ms) {
			s.X[v] = s.r.Categorical(s.marg)
		}
	}
}

// LocalMetropolisStep performs one round of the CSP LocalMetropolis chain:
// all vertices propose independently from their normalized activities, each
// constraint passes its check with probability CheckProb, and a vertex
// accepts its proposal iff all constraints containing it pass.
func (s *Sampler) LocalMetropolisStep() {
	c := s.C
	for v := 0; v < c.N; v++ {
		c.ProposalDistInto(v, s.marg)
		s.prop[v] = s.r.Categorical(s.marg)
	}
	for ci := range c.Cons {
		s.coins[ci] = s.r.Float64()
		s.pass[ci] = s.coins[ci] < c.CheckProbOn(ci, s.X, s.prop, c.scope(int32(ci)), s.ms.eval)
	}
	applyPassAccept(c, s.X, s.prop, s.pass, 0, c.N)
}
