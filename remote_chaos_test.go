package locsample_test

// The process-level chaos gate: real lsharded workers are SIGKILLed or
// SIGSTOPped in the middle of a draw, and the draw must still complete
// — recovered via standby replacement under the RetryPolicy — with a
// configuration byte-identical to an undisturbed centralized draw of
// the same (model, seed). This is the strongest form of the repo's
// self-healing claim: shard state is a pure function of (spec, plan,
// seed), so nothing a dead worker held is needed to finish its work.
//
// Determinism of the scenario itself: the victim is SIGSTOPped before
// the disrupted draw starts, so the draw is guaranteed to be in flight
// (stalled on the victim's result) when the disruption lands — the
// test never races the draw's completion.

import (
	"errors"
	"fmt"
	"os/exec"
	"reflect"
	"syscall"
	"testing"
	"time"

	"locsample"
	"locsample/internal/obs"
)

// chaosPolicy is the retry budget the chaos draws run under: enough
// attempts to survive one worker loss, fast backoff, no jitter (the
// test asserts nothing about timing, but determinism costs nothing).
// resultTimeout is the per-draw result deadline — the kill path
// unblocks reads by itself (connection reset), the stall path relies on
// this deadline firing.
func chaosPolicy(resultTimeout time.Duration) locsample.RetryPolicy {
	return locsample.RetryPolicy{
		Attempts:      3,
		Backoff:       50 * time.Millisecond,
		MaxBackoff:    200 * time.Millisecond,
		Jitter:        -1,
		DialTimeout:   5 * time.Second,
		ResultTimeout: resultTimeout,
	}
}

// newChaosDraw builds the centralized reference sample and a remote
// draw closure for one model kind, wired to the given fleet, standby
// pool, policy, and metrics registry.
func newChaosDraw(t *testing.T, kind string, shards int, addrs, standby []string,
	policy locsample.RetryPolicy, reg *obs.Registry) (want []int, draw func() ([]int, error)) {
	t.Helper()
	const rounds, seed = 18, 91
	switch kind {
	case "mrf":
		g := locsample.GridGraph(8, 6)
		m := locsample.NewColoring(g, 3*g.MaxDeg())
		central, err := locsample.NewSampler(m,
			locsample.WithRounds(rounds), locsample.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := central.Sample()
		if err != nil {
			t.Fatal(err)
		}
		want = ref.Sample
		s, err := locsample.NewSampler(m,
			locsample.WithRounds(rounds), locsample.WithSeed(seed),
			locsample.WithShards(shards), locsample.WithRemoteWorkers(addrs...),
			locsample.WithStandbyWorkers(standby...),
			locsample.WithRetryPolicy(policy), locsample.WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		draw = func() ([]int, error) {
			res, err := s.Sample()
			if err != nil {
				return nil, err
			}
			return res.Sample, nil
		}
	case "csp":
		g := locsample.GridGraph(6, 5)
		c := locsample.NewDominatingSet(g)
		init := make([]int, c.N)
		for i := range init {
			init[i] = 1
		}
		central, err := locsample.NewCSPSampler(g, c, init,
			locsample.WithRounds(rounds), locsample.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		want, _, err = central.Sample()
		if err != nil {
			t.Fatal(err)
		}
		s, err := locsample.NewCSPSampler(g, c, init,
			locsample.WithRounds(rounds), locsample.WithSeed(seed),
			locsample.WithShards(shards), locsample.WithRemoteWorkers(addrs...),
			locsample.WithStandbyWorkers(standby...),
			locsample.WithRetryPolicy(policy), locsample.WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		draw = func() ([]int, error) {
			out, _, err := s.Sample()
			return out, err
		}
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	return want, draw
}

// runChaos drives the shared scenario: establish a healthy session,
// SIGSTOP the victim, start a draw (now guaranteed stalled mid-flight),
// hand the victim to disrupt, and require the draw to recover
// byte-identical via standby replacement — then prove the replaced
// fleet is healthy with one more draw.
func runChaos(t *testing.T, kind string, shards int, policy locsample.RetryPolicy,
	disrupt func(victim *exec.Cmd)) {
	addrs, cmds := startWorkerProcsArgs(t, shards, "-recv-timeout", "10s")
	standby, _ := startWorkerProcsArgs(t, 1, "-recv-timeout", "10s")
	reg := obs.NewRegistry()
	want, draw := newChaosDraw(t, kind, shards, addrs, standby, policy, reg)

	got, err := draw()
	if err != nil {
		t.Fatalf("fault-free draw: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free draw diverges from centralized reference")
	}

	victim := cmds[0]
	if err := victim.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	// A stopped process ignores SIGTERM; make sure the spawner's cleanup
	// (registered earlier, so it runs after this) never has to wait it
	// out.
	t.Cleanup(func() { victim.Process.Kill() })

	type result struct {
		x   []int
		err error
	}
	done := make(chan result, 1)
	go func() {
		x, err := draw()
		done <- result{x, err}
	}()
	// Give the draw time to fan out and block on the victim's result.
	time.Sleep(250 * time.Millisecond)
	disrupt(victim)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("disrupted draw did not recover: %v", r.err)
		}
		if !reflect.DeepEqual(r.x, want) {
			t.Fatal("recovered draw diverges from centralized reference")
		}
	case <-time.After(90 * time.Second):
		t.Fatal("disrupted draw neither recovered nor failed")
	}
	if n := reg.Counter("locsample_worker_replacements_total", "").Value(); n < 1 {
		t.Fatalf("expected at least one standby replacement, counter = %d", n)
	}

	got, err = draw()
	if err != nil {
		t.Fatalf("post-recovery draw on replaced fleet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-recovery draw diverges from centralized reference")
	}
}

// TestChaosWorkerKilledMidDraw SIGKILLs a worker process while a draw
// is stalled on it: the connection reset unblocks the coordinator, the
// standby replaces the dead worker, and the redraw is byte-identical.
func TestChaosWorkerKilledMidDraw(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker processes")
	}
	for _, kind := range []string{"mrf", "csp"} {
		for _, shards := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				runChaos(t, kind, shards, chaosPolicy(60*time.Second),
					func(victim *exec.Cmd) { victim.Process.Kill() })
			})
		}
	}
}

// TestChaosWorkerStalledMidDraw leaves the victim SIGSTOPped: no
// connection ever errors, so recovery depends entirely on the policy's
// result deadline firing, after which replacement and redraw proceed as
// in the kill path.
func TestChaosWorkerStalledMidDraw(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and stalls worker processes")
	}
	for _, kind := range []string{"mrf", "csp"} {
		t.Run(kind, func(t *testing.T) {
			runChaos(t, kind, 2, chaosPolicy(3*time.Second),
				func(victim *exec.Cmd) { /* stay stopped; the deadline recovers */ })
		})
	}
}

// TestChaosNoStandbyTypedError pins the failure contract when there is
// nothing to heal with: a killed worker and an empty standby pool spend
// the retry budget and surface a typed *WorkerError naming the dead
// worker — never a partial sample.
func TestChaosNoStandbyTypedError(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker processes")
	}
	addrs, cmds := startWorkerProcsArgs(t, 2, "-recv-timeout", "10s")
	reg := obs.NewRegistry()
	want, draw := newChaosDraw(t, "mrf", 2, addrs, nil, chaosPolicy(60*time.Second), reg)

	got, err := draw()
	if err != nil {
		t.Fatalf("fault-free draw: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free draw diverges from centralized reference")
	}

	cmds[0].Process.Kill()
	// Redial of the dead address fails fast (connection refused), so the
	// budget is spent on dial errors, not deadlines.
	_, err = draw()
	if err == nil {
		t.Fatal("draw succeeded with a dead worker and no standby")
	}
	var we *locsample.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorkerError, got %T: %v", err, err)
	}
	if we.Worker != 0 {
		t.Fatalf("want failure attributed to worker 0, got %d (%s)", we.Worker, we.Addr)
	}
}
