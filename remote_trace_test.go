package locsample_test

// The distributed-tracing gate: a traced draw placed on real lsharded
// worker processes over loopback TCP must come back as ONE trace — the
// coordinator's draw span plus every worker's per-shard round series,
// with barrier-wait and wire-byte attribution — and that trace must be
// fetchable from the serving mux at /debug/trace/{id}. Tracing must not
// perturb the draw: the traced configuration is bit-identical to the
// untraced one at the same seed.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"locsample/internal/service"
)

const tracedGridSpec = `{
	"version": "locsample/v1",
	"name": "traced-grid",
	"graph": {"family": "grid", "rows": 8, "cols": 8},
	"model": {"kind": "coloring", "q": 16}
}`

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestCrossProcessTracedDraw(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const workers, shards, rounds, seed = 2, 4, 20, 77

	addrs := startWorkerProcs(t, workers)
	reg := service.NewRegistry(service.Config{WorkerAddrs: addrs})
	ts := httptest.NewServer(service.NewServer(reg))
	defer ts.Close()

	post := func(path, body string, out any) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil && resp.StatusCode < 300 {
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatalf("decoding %q: %v", raw, err)
			}
		}
		return resp.StatusCode, string(raw)
	}

	var rr service.RegisterResponse
	if code, body := post("/v1/models", tracedGridSpec, &rr); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}

	drawBody := fmt.Sprintf(`{"seed":%d,"shards":%d,"rounds":%d`, seed, shards, rounds)
	var bare service.SampleResponse
	if code, body := post("/v1/models/"+rr.ID+"/sample", drawBody+`}`, &bare); code != http.StatusOK {
		t.Fatalf("bare sharded sample: code %d body %s", code, body)
	}
	if bare.ShardStats == nil || bare.ShardStats.WireFrames == 0 {
		t.Fatalf("bare draw did not cross the wire: %+v", bare.ShardStats)
	}

	var traced service.SampleResponse
	if code, body := post("/v1/models/"+rr.ID+"/sample", drawBody+`,"trace":true}`, &traced); code != http.StatusOK {
		t.Fatalf("traced sharded sample: code %d body %s", code, body)
	}
	if len(traced.TraceID) != 16 {
		t.Fatalf("traced draw returned ID %q, want 16 hex chars", traced.TraceID)
	}
	if !reflect.DeepEqual(bare.Samples, traced.Samples) {
		t.Fatal("traced cross-process draw diverged from untraced draw at the same seed")
	}

	resp, err := http.Get(ts.URL + "/debug/trace/" + traced.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/%s: code %d", traced.TraceID, resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("decoding Chrome trace JSON: %v", err)
	}

	// One trace, many processes: pid 0 is the coordinator, pid w+1 the
	// workers. Every shard's rounds must land as compute spans on its
	// worker's lane, and each worker's result span must attribute its
	// wire traffic and barrier wait.
	compute := map[int]int{}     // pid → round.compute spans
	shardLanes := map[int]bool{} // (pid<<16|tid) lanes seen
	var drawSpans, resultSpans int
	var wireBytes, barrierNS float64
	procNames := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		switch ev.Name {
		case "round.compute":
			compute[ev.PID]++
			shardLanes[ev.PID<<16|ev.TID] = true
		case "remote.draw":
			drawSpans++
		case "worker.result":
			resultSpans++
			if b, ok := ev.Args["wire_bytes"].(float64); ok {
				wireBytes += b
			}
			if b, ok := ev.Args["barrier_wait_ns"].(float64); ok {
				barrierNS += b
			}
		case "process_name":
			if ev.Ph == "M" && ev.PID >= 1 {
				procNames[ev.PID] = true
			}
		}
	}
	if compute[0] != 0 {
		t.Fatalf("coordinator lane has %d compute spans; rounds ran on workers", compute[0])
	}
	var workerCompute int
	for pid, n := range compute {
		if pid >= 1 {
			workerCompute += n
		}
	}
	if workerCompute != shards*rounds {
		t.Fatalf("%d worker compute spans, want %d (shards=%d rounds=%d)",
			workerCompute, shards*rounds, shards, rounds)
	}
	if len(shardLanes) != shards {
		t.Fatalf("compute spans span %d shard lanes, want %d", len(shardLanes), shards)
	}
	if drawSpans != 1 {
		t.Fatalf("%d remote.draw spans, want 1", drawSpans)
	}
	if resultSpans != workers || len(procNames) != workers {
		t.Fatalf("%d worker.result spans on %d named processes, want %d workers",
			resultSpans, len(procNames), workers)
	}
	if wireBytes == 0 {
		t.Fatal("trace carries no wire-byte attribution")
	}
	if barrierNS == 0 {
		t.Fatal("trace carries no barrier-wait attribution")
	}
}
