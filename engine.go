package locsample

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"locsample/internal/chains"
	"locsample/internal/core"
)

// Sampler is the batch sampling engine: it compiles a model and option set
// once — round budget, feasible initial configuration, proposal tables, CSR
// adjacency — and then draws any number of independent samples without
// repeating that setup. SampleN spreads chains over a worker pool; each
// worker owns one reusable chain state and scratch buffer, so the chains'
// inner loops run allocation-free in the steady state.
//
// Determinism: chain i of SampleN(k) with master seed s is bit-identical to
// a single Sample call with seed ChainSeed(s, i), regardless of k, worker
// count, or scheduling. Sampler.Sample() is bit-identical to the package
// level Sample with the same options.
type Sampler struct {
	m      *Model
	cfg    core.Config
	rounds int
	theory int
	init   []int
}

// Batch is the result of SampleN: k independent samples drawn from one
// compiled model. All samples share one flat backing array.
type Batch struct {
	// Samples[i] is chain i's output configuration.
	Samples [][]int
	// Rounds is the number of chain iterations each chain executed.
	Rounds int
	// TheoryRounds is the automatic round budget (0 when WithRounds was
	// supplied).
	TheoryRounds int
	// Stats aggregates communication across all chains of a distributed
	// batch: message/byte counts are summed, MaxMessageBytes and Rounds
	// are per-chain maxima. Zero for centralized batches.
	Stats Stats
}

// ChainSeed derives the seed batch chain i runs with under master seed s:
// SampleN chain i equals Sample(WithSeed(ChainSeed(s, i))) bit-for-bit.
func ChainSeed(s uint64, i int) uint64 {
	return core.ChainSeed(s, uint64(i))
}

// WithWorkers bounds the goroutine pool SampleN uses (default GOMAXPROCS).
// It does not affect results, only how chains are spread over CPUs.
func WithWorkers(n int) Option {
	return func(c *core.Config) { c.Workers = n }
}

// NewSampler compiles model m with the given options into a reusable batch
// sampler. The round budget and the greedy feasible initial configuration
// are resolved once, here; they are exactly the values every individual
// Sample call with the same options would resolve.
func NewSampler(m *Model, opts ...Option) (*Sampler, error) {
	cfg := core.Config{Algorithm: chains.LocalMetropolis}
	for _, opt := range opts {
		opt(&cfg)
	}
	rounds, theory, init, err := core.Compile(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Sampler{
		m:      m,
		cfg:    cfg,
		rounds: rounds,
		theory: theory,
		// Copied: the caller may mutate the slice it passed WithInitial.
		init: append([]int(nil), init...),
	}, nil
}

// Rounds returns the per-chain round budget the engine resolved.
func (s *Sampler) Rounds() int { return s.rounds }

// TheoryRounds returns the automatic round budget, or 0 when WithRounds
// pinned the budget explicitly.
func (s *Sampler) TheoryRounds() int { return s.theory }

// Sample draws one configuration with the compiled settings and the master
// seed, exactly as the package-level Sample would.
func (s *Sampler) Sample() (*Result, error) {
	return s.sampleWithSeed(s.cfg.Seed)
}

func (s *Sampler) sampleWithSeed(seed uint64) (*Result, error) {
	cfg := s.cfg
	cfg.Seed = seed
	cfg.Rounds = s.rounds
	cfg.Init = s.init
	res, err := core.Sample(s.m, cfg)
	if err != nil {
		return nil, err
	}
	res.TheoryRounds = s.theory
	return res, nil
}

// SampleN draws k independent samples concurrently. Chain i runs with seed
// ChainSeed(masterSeed, i); results are positionally stable, so the same
// call always returns the same Batch no matter how many workers raced over
// it. In centralized mode every worker reuses one chain state and scratch,
// so beyond the k result slices nothing is allocated per chain and nothing
// at all per round.
func (s *Sampler) SampleN(k int) (*Batch, error) {
	return s.SampleNFrom(s.cfg.Seed, k)
}

// SampleNFrom is SampleN with an explicit master seed in place of the
// compiled WithSeed value: chain i runs with ChainSeed(seed, i). It does
// not mutate the Sampler, so concurrent calls (the serving path, where one
// compiled sampler answers many requests with per-request seeds) are safe.
func (s *Sampler) SampleNFrom(seed uint64, k int) (*Batch, error) {
	if k < 0 {
		return nil, fmt.Errorf("locsample: SampleN needs k >= 0, got %d", k)
	}
	batch := &Batch{
		Samples:      make([][]int, k),
		Rounds:       s.rounds,
		TheoryRounds: s.theory,
	}
	if k == 0 {
		return batch, nil
	}
	n := s.m.G.N()
	backing := make([]int, k*n)
	for i := 0; i < k; i++ {
		batch.Samples[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	var chainStats []Stats
	if s.cfg.Distributed {
		chainStats = make([]Stats, k)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
		aborted atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cs *chains.Sampler
			for {
				// Fail fast: once any chain errors, no worker claims
				// another chain — without this check the pool would drain
				// the entire remaining queue after the batch is already
				// doomed.
				if aborted.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				chainSeed := core.ChainSeed(seed, uint64(i))
				if s.cfg.Distributed {
					res, err := s.sampleWithSeed(chainSeed)
					if err != nil {
						errOnce.Do(func() { runErr = err })
						aborted.Store(true)
						return
					}
					copy(batch.Samples[i], res.Sample)
					chainStats[i] = res.Stats
					continue
				}
				if cs == nil {
					cs = chains.NewSampler(s.m, s.init, chainSeed,
						s.cfg.Algorithm, chains.Options{DropRule3: s.cfg.DropRule3})
				} else {
					cs.Reset(s.init, chainSeed)
				}
				cs.Run(s.rounds)
				copy(batch.Samples[i], cs.X)
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	for _, st := range chainStats {
		batch.Stats.Messages += st.Messages
		batch.Stats.Bytes += st.Bytes
		if st.MaxMessageBytes > batch.Stats.MaxMessageBytes {
			batch.Stats.MaxMessageBytes = st.MaxMessageBytes
		}
		if st.Rounds > batch.Stats.Rounds {
			batch.Stats.Rounds = st.Rounds
		}
	}
	return batch, nil
}
