package locsample

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"locsample/internal/chains"
	"locsample/internal/cluster"
	"locsample/internal/core"
	"locsample/internal/diag"
	"locsample/internal/obs"
	"locsample/internal/partition"
)

// Sampler is the batch sampling engine: it compiles a model and option set
// once — round budget, feasible initial configuration, proposal tables, CSR
// adjacency, and (with WithShards) the partitioned shard plan — and then
// draws any number of independent samples without repeating that setup.
// SampleN spreads chains over a worker pool; each worker owns one reusable
// chain state and scratch buffer, so the chains' inner loops run
// allocation-free in the steady state. With WithShards(k), every chain
// additionally runs as k lockstep shard workers exchanging only boundary
// states — within-chain parallelism for single-draw latency on graphs too
// large for one core.
//
// Determinism: chain i of SampleN(k) with master seed s is bit-identical to
// a single Sample call with seed ChainSeed(s, i), regardless of k, worker
// count, scheduling, shard count, or partition strategy. Sampler.Sample()
// is bit-identical to the package level Sample with the same options.
type Sampler struct {
	m      *Model
	cfg    core.Config
	rounds int
	theory int
	init   []int
	// capRounds is the worst-case budget a WithRoundsAuto compile measured
	// under (0 when the budget was not auto-measured); rounds then holds
	// the coupling-measured count.
	capRounds int

	// plan is the compiled shard layout (nil when unsharded). engines
	// pools reusable cluster engines over it: one engine serves one draw
	// at a time, and concurrent SampleNFrom calls (the serving path) each
	// borrow their own.
	plan    *partition.Plan
	engines sync.Pool
	// remote is the cross-process coordinator (nil unless WithRemoteWorkers
	// placed the shards on lsharded processes). Remote draws are serialized
	// on its control connections instead of pooled engines.
	remote *remoteEngine
	// chainPool pools centralized chain states (with their scratch) across
	// SampleNFrom calls, so the serving path's steady state — many calls
	// with small k — constructs and allocates nothing per draw.
	chainPool sync.Pool
	// soaPool pools SoA batch blocks across SampleNFrom calls, grow-only
	// on width: a pooled block serves any batch no wider than it was
	// built for (lanes pack at the run width), and an undersized one is
	// dropped and rebuilt wider.
	soaPool sync.Pool

	// Metric series (nil without WithMetrics). roundObs is the
	// allocation-free observer pooled chains and engines run with;
	// mDraws/mDrawNS meter whole draws.
	mDraws   *obs.Counter
	mDrawNS  *obs.Histogram
	roundObs *obs.RoundMetrics
}

// ShardStats reports a sharded draw's runtime profile: worker count,
// boundary messages and vertex states exchanged, and time spent blocked at
// round barriers.
type ShardStats = cluster.Stats

// ShardStrategy selects the graph partitioner used by WithShards.
type ShardStrategy = partition.Strategy

const (
	// ShardRange partitions vertices into contiguous, balanced ID blocks —
	// near-minimal boundaries on generators with coherent numbering
	// (grids, paths, tori).
	ShardRange = partition.Range
	// ShardBFS grows shards by seeded breadth-first search — low-cut
	// regions on graphs whose vertex numbering carries no locality.
	ShardBFS = partition.BFS
)

// Batch is the result of SampleN: k independent samples drawn from one
// compiled model. All samples share one flat backing array.
type Batch struct {
	// Samples[i] is chain i's output configuration.
	Samples [][]int
	// Rounds is the number of chain iterations each chain executed.
	Rounds int
	// TheoryRounds is the automatic round budget (0 when WithRounds was
	// supplied).
	TheoryRounds int
	// Stats aggregates communication across all chains of a distributed
	// batch: message/byte counts are summed, MaxMessageBytes and Rounds
	// are per-chain maxima. Zero for centralized batches.
	Stats Stats
	// Shard aggregates the sharded runtime's profile across all chains
	// (messages, values, and barrier waits are summed). Zero for
	// unsharded batches.
	Shard ShardStats
	// SoAWidth is the lane width of the SoA block engine the batch ran
	// through (0 when chains ran the per-chain reference path). Purely
	// informational: the samples are bit-identical either way.
	SoAWidth int
}

// ChainSeed derives the seed batch chain i runs with under master seed s:
// SampleN chain i equals Sample(WithSeed(ChainSeed(s, i))) bit-for-bit.
func ChainSeed(s uint64, i int) uint64 {
	return core.ChainSeed(s, uint64(i))
}

// WithWorkers bounds the goroutine pool SampleN uses (default GOMAXPROCS,
// or GOMAXPROCS/shards when sharding). It does not affect results, only
// how chains are spread over CPUs.
func WithWorkers(n int) Option {
	return func(c *core.Config) { c.Workers = n }
}

// WithShards splits every single chain across k lockstep shard workers
// that exchange only boundary states between rounds (the in-process
// analogue of the paper's message-passing network). Output is
// bit-identical to the unsharded chain at the same seed — a vertex keeps
// its PRF-keyed randomness regardless of which shard owns it — so k is
// purely a latency/throughput knob. Only LubyGlauber and LocalMetropolis
// shard; k ≤ 1 means centralized.
func WithShards(k int) Option {
	return func(c *core.Config) { c.Shards = k }
}

// WithShardStrategy selects the graph partitioner WithShards uses
// (default ShardRange). The choice never affects outputs, only boundary
// traffic.
func WithShardStrategy(s ShardStrategy) Option {
	return func(c *core.Config) { c.ShardStrategy = s }
}

// WithParallelRounds runs each round of every chain as barrier-separated
// vertex-parallel phases (propose / edge-filter / accept, and β-fill /
// resample) fanned across n goroutines over contiguous CSR ranges; n <= 0
// means GOMAXPROCS. Unlike WithShards this needs no partition plan or
// boundary exchange — it is the lightweight way to put one chain on many
// cores. Trajectories are bit-identical to sequential rounds at every
// worker count, so n is purely a latency knob. Only LubyGlauber and
// LocalMetropolis support it; it is mutually exclusive with WithShards and
// WithDistributed.
func WithParallelRounds(n int) Option {
	return func(c *core.Config) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.Parallel = n
	}
}

// ParseShardStrategy maps a wire name ("range", "bfs", or "" for the
// default) to a ShardStrategy.
func ParseShardStrategy(s string) (ShardStrategy, error) {
	return partition.ParseStrategy(s)
}

// NewSampler compiles model m with the given options into a reusable batch
// sampler. The round budget, the greedy feasible initial configuration,
// and (when sharded) the partition plan are resolved once, here; they are
// exactly the values every individual Sample call with the same options
// would resolve.
func NewSampler(m *Model, opts ...Option) (*Sampler, error) {
	cfg := core.Config{Algorithm: chains.LocalMetropolis}
	for _, opt := range opts {
		opt(&cfg)
	}
	rounds, theory, init, err := core.Compile(m, cfg)
	if err != nil {
		return nil, err
	}
	s := &Sampler{
		m:      m,
		cfg:    cfg,
		rounds: rounds,
		theory: theory,
		// Copied: the caller may mutate the slice it passed WithInitial.
		init: append([]int(nil), init...),
	}
	if cfg.RoundsAuto {
		// Measure the coupling-coalescence budget once, at compile time,
		// under the worst-case cap Compile just resolved. The measurement
		// is centralized and deterministic in (model, init, seed, k, cap),
		// so every sampler compiled with these options resolves the same
		// measured count — and a draw at that count is bit-identical to a
		// WithRounds(measured) draw by construction.
		d, err := diag.NewCoupledMRF(m, s.init, cfg.Seed, cfg.Algorithm,
			chains.Options{DropRule3: cfg.DropRule3},
			diag.Options{Chains: cfg.Coupling, MaxRounds: rounds})
		if err != nil {
			return nil, err
		}
		s.capRounds = rounds
		s.rounds = d.RunToCoalescence()
	}
	s.mDraws, s.mDrawNS, s.roundObs = newDrawMetrics(cfg.Obs, "mrf")
	s.chainPool.New = func() any {
		cs := chains.NewSampler(m, s.init, 0, cfg.Algorithm,
			chains.Options{DropRule3: cfg.DropRule3, Parallel: cfg.Parallel})
		if s.roundObs != nil {
			cs.Obs = s.roundObs
		}
		return cs
	}
	if cfg.Shards > 1 {
		if cfg.Distributed {
			return nil, fmt.Errorf("locsample: Distributed and WithShards are mutually exclusive")
		}
		plan, err := partition.Build(m.G, cfg.Shards, cfg.ShardStrategy, cfg.Seed)
		if err != nil {
			return nil, err
		}
		s.plan = plan
		if len(cfg.WorkerAddrs) > 0 {
			// Coordinator mode: the shards live in lsharded processes. The
			// workers rebuild the model from its wire spec, so derive one
			// when the caller didn't pin it with WithModelSpec.
			sp := cfg.ModelSpec
			if sp == nil {
				sp, err = NewSpecFromModel(m, "remote")
				if err != nil {
					return nil, fmt.Errorf("locsample: remote draws ship the model as a spec: %w", err)
				}
			}
			s.remote, err = newRemoteEngine(remoteJob{
				kind:      "mrf",
				spec:      sp,
				algorithm: cfg.Algorithm.String(),
				dropRule3: cfg.DropRule3,
				shards:    cfg.Shards,
				strategy:  cfg.ShardStrategy.String(),
				planSeed:  cfg.Seed,
				init:      s.init,
				addrs:     cfg.WorkerAddrs,
			}, mrfOwned(plan), m.G.N(), resolveRetry(&cfg), cfg.StandbyAddrs)
			if err != nil {
				return nil, err
			}
			s.remote.setObs(cfg.Obs, cfg.Log)
			return s, nil
		}
		newEngine := func() (*cluster.Engine, error) {
			var eng *cluster.Engine
			var err error
			if cfg.Transport != nil {
				local := make([]int, plan.K)
				for i := range local {
					local[i] = i
				}
				eng, err = cluster.NewWithTransport(m, plan, cfg.Algorithm, cfg.DropRule3,
					local, cfg.Transport(plan.NeighborLists()))
			} else {
				eng, err = cluster.New(m, plan, cfg.Algorithm, cfg.DropRule3)
			}
			if err == nil && s.roundObs != nil {
				eng.SetObserver(s.roundObs)
			}
			return eng, err
		}
		// Construct one engine eagerly: it both validates the algorithm
		// and pre-warms the pool for the first draw.
		eng, err := newEngine()
		if err != nil {
			return nil, err
		}
		s.engines.New = func() any {
			e, err := newEngine()
			if err != nil {
				// Unreachable: the eager construction above vetted the
				// same arguments.
				panic(err)
			}
			return e
		}
		s.engines.Put(eng)
	}
	return s, nil
}

// Close releases the sampler's external resources — the coordinator's
// control connections when draws run on remote workers. Purely local
// samplers hold nothing that needs closing; Close is safe either way.
func (s *Sampler) Close() error {
	if s.remote != nil {
		return s.remote.Close()
	}
	return nil
}

// Rounds returns the per-chain round budget the engine resolved.
func (s *Sampler) Rounds() int { return s.rounds }

// TheoryRounds returns the automatic round budget, or 0 when WithRounds
// pinned the budget explicitly.
func (s *Sampler) TheoryRounds() int { return s.theory }

// CapRounds returns the worst-case budget a WithRoundsAuto compile
// measured under — Rounds() then holds the coupling-measured count.
// 0 when the budget was not auto-measured.
func (s *Sampler) CapRounds() int { return s.capRounds }

// Shards returns the shard count draws run with (1 when unsharded).
func (s *Sampler) Shards() int {
	if s.plan == nil {
		return 1
	}
	return s.plan.K
}

// ParallelRounds returns the vertex-parallel worker count each chain's
// rounds run with (1 when rounds are sequential).
func (s *Sampler) ParallelRounds() int {
	if s.cfg.Parallel > 1 {
		return s.cfg.Parallel
	}
	return 1
}

// Sample draws one configuration with the compiled settings and the master
// seed, exactly as the package-level Sample would.
func (s *Sampler) Sample() (*Result, error) {
	return s.sampleWithSeed(context.Background(), s.cfg.Seed)
}

// SampleContext is Sample under a context: a cancel or deadline aborts
// the draw — remote draws unblock their control reads and stop
// retrying, sharded draws close their engine, centralized chains stop
// at the next round boundary — and ctx.Err() is returned. Cancellation
// never yields a partial sample.
func (s *Sampler) SampleContext(ctx context.Context) (*Result, error) {
	return s.sampleWithSeed(ctx, s.cfg.Seed)
}

// runChainCtx advances a centralized chain by the compiled budget,
// honoring ctx: a cancel flips the chain's abort flag so the loop
// stops at the next round boundary, and the draw returns ctx.Err().
// Without a cancelable ctx it is exactly cs.Run.
func runChainCtx(ctx context.Context, cs *chains.Sampler, rounds int) error {
	if ctx == nil || ctx.Done() == nil {
		cs.Run(rounds)
		return nil
	}
	var abort atomic.Bool
	stop := context.AfterFunc(ctx, func() { abort.Store(true) })
	cs.Abort = &abort
	cs.Run(rounds)
	cs.Abort = nil
	stop()
	return ctx.Err()
}

// ctxWatch arms f to run on ctx cancellation; the returned stop
// releases the watcher. A nil or non-cancelable ctx arms nothing.
func ctxWatch(ctx context.Context, f func()) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return func() bool { return true }
	}
	return context.AfterFunc(ctx, f)
}

func (s *Sampler) sampleWithSeed(ctx context.Context, seed uint64) (*Result, error) {
	start := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if s.remote != nil {
		out := make([]int, s.m.G.N())
		st, err := s.remote.draw(ctx, seed, s.rounds, out, nil)
		if err != nil {
			return nil, err
		}
		s.observeDraw(start)
		return &Result{
			Sample:       out,
			Rounds:       s.rounds,
			TheoryRounds: s.theory,
			Shard:        &st,
		}, nil
	}
	if s.plan != nil {
		eng := s.engines.Get().(*cluster.Engine)
		// Cancellation closes the engine's transport: the lockstep
		// workers fail their next exchange and Run returns. The closed
		// engine is discarded, never re-pooled.
		stop := ctxWatch(ctx, func() { eng.Close() })
		out := make([]int, s.m.G.N())
		st, err := eng.Run(s.init, seed, s.rounds, out)
		stop()
		if cerr := ctxErr(ctx); cerr != nil {
			eng.Close()
			return nil, cerr
		}
		if err != nil {
			// A failed engine is poisoned (its transport is closed); it
			// must not go back in the pool.
			eng.Close()
			return nil, err
		}
		s.engines.Put(eng)
		s.observeDraw(start)
		return &Result{
			Sample:       out,
			Rounds:       s.rounds,
			TheoryRounds: s.theory,
			Shard:        &st,
		}, nil
	}
	if s.cfg.Distributed {
		cfg := s.cfg
		cfg.Seed = seed
		cfg.Rounds = s.rounds // measured count when auto; core re-resolves nothing
		cfg.RoundsAuto = false
		cfg.Init = s.init
		res, err := core.Sample(s.m, cfg)
		if err != nil {
			return nil, err
		}
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		res.TheoryRounds = s.theory
		s.observeDraw(start)
		return res, nil
	}
	// Centralized draws reuse the pooled chain state (same state SampleN
	// workers use), so they run instrumented when WithMetrics is set and
	// allocate only the output slice.
	cs := s.chainPool.Get().(*chains.Sampler)
	cs.Reset(s.init, seed)
	err := runChainCtx(ctx, cs, s.rounds)
	out := append([]int(nil), cs.X...)
	s.chainPool.Put(cs)
	if err != nil {
		return nil, err
	}
	s.observeDraw(start)
	return &Result{
		Sample:       out,
		Rounds:       s.rounds,
		TheoryRounds: s.theory,
	}, nil
}

// observeDraw meters one completed draw (no-op without WithMetrics).
func (s *Sampler) observeDraw(start time.Time) {
	if s.mDraws == nil {
		return
	}
	s.mDraws.Inc()
	s.mDrawNS.Observe(time.Since(start).Nanoseconds())
}

// SampleTraced draws one configuration exactly like Sample while
// recording a timing trace: per-round compute (and, for sharded
// draws, barrier) spans per shard lane, plus per-worker wire
// attribution when the draw runs on remote workers. Tracing never
// perturbs the trajectory — the sample is bit-identical to an
// untraced draw at the same seed. Render the trace with
// Trace.WriteChrome for chrome://tracing / Perfetto.
func (s *Sampler) SampleTraced() (*Result, *Trace, error) {
	return s.SampleTracedFrom(s.cfg.Seed)
}

// SampleTracedFrom is SampleTraced with an explicit master seed.
func (s *Sampler) SampleTracedFrom(seed uint64) (*Result, *Trace, error) {
	return s.SampleTracedContext(context.Background(), seed)
}

// SampleTracedContext is SampleTracedFrom under a context; a canceled
// ctx aborts the draw exactly as in SampleContext and returns
// ctx.Err().
func (s *Sampler) SampleTracedContext(ctx context.Context, seed uint64) (*Result, *Trace, error) {
	tr := obs.NewTrace("mrf draw")
	res, err := s.sampleTraced(ctx, seed, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

func (s *Sampler) sampleTraced(ctx context.Context, seed uint64, tr *obs.Trace) (*Result, error) {
	start := time.Now()
	t0 := tr.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if s.remote != nil {
		out := make([]int, s.m.G.N())
		st, err := s.remote.draw(ctx, seed, s.rounds, out, tr)
		if err != nil {
			return nil, err
		}
		s.observeDraw(start)
		return &Result{
			Sample:       out,
			Rounds:       s.rounds,
			TheoryRounds: s.theory,
			Shard:        &st,
		}, nil
	}
	if s.plan != nil {
		eng := s.engines.Get().(*cluster.Engine)
		rec := obs.NewRoundRecorder(s.plan.K, s.rounds)
		eng.SetObserver(&obs.TeeRounds{A: rec, B: s.roundObs})
		stop := ctxWatch(ctx, func() { eng.Close() })
		out := make([]int, s.m.G.N())
		st, err := eng.Run(s.init, seed, s.rounds, out)
		stop()
		eng.SetObserver(s.engineObserver())
		if cerr := ctxErr(ctx); cerr != nil {
			eng.Close()
			return nil, cerr
		}
		if err != nil {
			eng.Close()
			return nil, err
		}
		s.engines.Put(eng)
		rec.FlushTo(tr, 0)
		s.addDrawSpan(tr, t0, seed, s.plan.K)
		s.observeDraw(start)
		return &Result{
			Sample:       out,
			Rounds:       s.rounds,
			TheoryRounds: s.theory,
			Shard:        &st,
		}, nil
	}
	if s.cfg.Distributed {
		// The LOCAL-model runtime has no per-round hooks; a traced
		// distributed draw records only the draw-level span.
		res, err := s.sampleWithSeed(ctx, seed)
		if err != nil {
			return nil, err
		}
		s.addDrawSpan(tr, t0, seed, 1)
		return res, nil
	}
	cs := s.chainPool.Get().(*chains.Sampler)
	rec := obs.NewRoundRecorder(1, s.rounds)
	prev := cs.Obs
	cs.Obs = &obs.TeeRounds{A: rec, B: s.roundObs}
	cs.Reset(s.init, seed)
	err := runChainCtx(ctx, cs, s.rounds)
	cs.Obs = prev
	out := append([]int(nil), cs.X...)
	s.chainPool.Put(cs)
	if err != nil {
		return nil, err
	}
	rec.FlushTo(tr, 0)
	s.addDrawSpan(tr, t0, seed, 1)
	s.observeDraw(start)
	return &Result{
		Sample:       out,
		Rounds:       s.rounds,
		TheoryRounds: s.theory,
	}, nil
}

// engineObserver is the observer pooled engines idle with (nil unless
// WithMetrics attached round metrics).
func (s *Sampler) engineObserver() chains.RoundObserver {
	if s.roundObs != nil {
		return s.roundObs
	}
	return nil
}

// addDrawSpan closes a traced local draw with its draw-level span.
func (s *Sampler) addDrawSpan(tr *obs.Trace, t0 int64, seed uint64, shards int) {
	span := obs.Span{Name: "draw", PID: 0, TID: 0, StartNS: t0, DurNS: tr.Now() - t0}
	span.SetArg("seed", int64(seed))
	span.SetArg("rounds", int64(s.rounds))
	span.SetArg("shards", int64(shards))
	tr.Add(span)
}

// SampleDiagnosed draws one configuration exactly like Sample while
// running a grand coupling alongside it: WithCoupling(k) chains (default
// 4) advance from adversarial initial states under the draw's own PRF
// coins, and the returned Diagnosis carries the per-round mixing series
// (Hamming disagreement, flip-rate EWMA, per-shard compute/barrier
// attribution) plus the coalescence verdict. Chain 0 of the coupling IS
// the draw — it starts from the compiled init with the draw's seed — so
// the sample is bit-identical to an undiagnosed Sample at the same seed
// (pinned). Diagnosed draws always run the full compiled budget and run
// centralized (sharding is a latency runtime, not a distribution one);
// Result.Shard is therefore nil.
func (s *Sampler) SampleDiagnosed() (*Result, *Diagnosis, error) {
	return s.sampleDiagnosed(s.cfg.Seed, nil)
}

// SampleDiagnosedFrom is SampleDiagnosed with an explicit master seed.
func (s *Sampler) SampleDiagnosedFrom(seed uint64) (*Result, *Diagnosis, error) {
	return s.sampleDiagnosed(seed, nil)
}

// SampleDiagnosedObserved is SampleDiagnosedFrom with a per-round probe —
// the live-streaming seam (the service's SSE endpoint is such a probe).
// The probe runs on the round hot path; see diag.Probe for the contract.
func (s *Sampler) SampleDiagnosedObserved(seed uint64, probe CouplingProbe) (*Result, *Diagnosis, error) {
	return s.sampleDiagnosed(seed, probe)
}

func (s *Sampler) sampleDiagnosed(seed uint64, probe diag.Probe) (*Result, *Diagnosis, error) {
	start := time.Now()
	d, err := diag.NewCoupledMRF(s.m, s.init, seed, s.cfg.Algorithm,
		chains.Options{DropRule3: s.cfg.DropRule3},
		diag.Options{Chains: s.cfg.Coupling, MaxRounds: s.rounds, Probe: probe, Obs: s.engineObserver()})
	if err != nil {
		return nil, nil, err
	}
	d.Run(s.rounds)
	out := append([]int(nil), d.X()...)
	s.observeDraw(start)
	return &Result{
		Sample:       out,
		Rounds:       s.rounds,
		TheoryRounds: s.theory,
	}, d.Finish(), nil
}

// SampleN draws k independent samples concurrently. Chain i runs with seed
// ChainSeed(masterSeed, i); results are positionally stable, so the same
// call always returns the same Batch no matter how many workers raced over
// it. In centralized mode every worker reuses one chain state and scratch,
// so beyond the k result slices nothing is allocated per chain and nothing
// at all per round. In sharded mode every worker borrows a pooled cluster
// engine and each chain runs shard-parallel inside it.
func (s *Sampler) SampleN(k int) (*Batch, error) {
	return s.SampleNFrom(s.cfg.Seed, k)
}

// SampleNFrom is SampleN with an explicit master seed in place of the
// compiled WithSeed value: chain i runs with ChainSeed(seed, i). It does
// not mutate the Sampler, so concurrent calls (the serving path, where one
// compiled sampler answers many requests with per-request seeds) are safe.
func (s *Sampler) SampleNFrom(seed uint64, k int) (*Batch, error) {
	return s.SampleNContext(context.Background(), seed, k)
}

// SampleNContext is SampleNFrom under a context. A cancel aborts the
// batch and returns ctx.Err(): no worker claims another chain,
// centralized chains stop at their next round boundary, remote chains
// abort through the coordinator, and in-flight sharded chains have
// their engines closed. A canceled batch never returns partial
// samples.
func (s *Sampler) SampleNContext(ctx context.Context, seed uint64, k int) (*Batch, error) {
	if k < 0 {
		return nil, fmt.Errorf("locsample: SampleN needs k >= 0, got %d", k)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	batch := &Batch{
		Samples:      make([][]int, k),
		Rounds:       s.rounds,
		TheoryRounds: s.theory,
	}
	if k == 0 {
		return batch, nil
	}
	n := s.m.G.N()
	backing := make([]int, k*n)
	for i := 0; i < k; i++ {
		batch.Samples[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	if s.remote != nil {
		// Remote draws serialize on the coordinator's control connections;
		// each chain already fans out across the worker processes.
		for i := 0; i < k; i++ {
			chainStart := time.Now()
			st, err := s.remote.draw(ctx, core.ChainSeed(seed, uint64(i)), s.rounds, batch.Samples[i], nil)
			if err != nil {
				return nil, err
			}
			batch.Shard.Add(st)
			s.observeDraw(chainStart)
		}
		return batch, nil
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if s.plan != nil {
			// Each chain already runs plan.K goroutines; dividing the pool
			// keeps total parallelism near GOMAXPROCS instead of
			// oversubscribing by a factor of K.
			workers = max(1, workers/s.plan.K)
		} else if s.cfg.Parallel > 1 {
			// Same reasoning for vertex-parallel rounds: each chain fans
			// its phases over Parallel goroutines.
			workers = max(1, workers/s.cfg.Parallel)
		}
	}
	if s.plan == nil && !s.cfg.Distributed && s.cfg.Parallel <= 1 && soaBatchable(s.cfg.Algorithm) {
		if width := batchWidth(s.cfg.BatchWidth, k, workers); width > 0 {
			return s.sampleNSoA(ctx, seed, k, width, workers, batch)
		}
	}
	workers = batchWorkers(workers, k)
	var chainStats []Stats
	if s.cfg.Distributed {
		chainStats = make([]Stats, k)
	}
	var shardStats []ShardStats
	if s.plan != nil {
		shardStats = make([]ShardStats, k)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
		aborted atomic.Bool
	)
	// One shared abort flag serves both the claim loop (no worker takes
	// another chain) and the centralized chains (stop at the next round
	// boundary); sharded workers additionally close their engines so
	// in-flight lockstep rounds unblock.
	var chainAbort atomic.Bool
	stopWatch := ctxWatch(ctx, func() {
		aborted.Store(true)
		chainAbort.Store(true)
	})
	defer stopWatch()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cs *chains.Sampler
			var eng *cluster.Engine
			engDead := false
			if s.plan != nil {
				eng = s.engines.Get().(*cluster.Engine)
				stopEng := ctxWatch(ctx, func() { eng.Close() })
				// A failed engine is poisoned (transport closed) and must
				// not be re-pooled for the next batch; neither may one a
				// cancellation closed (or is about to close).
				defer func() {
					stopEng()
					if engDead || ctxErr(ctx) != nil {
						eng.Close()
					} else {
						s.engines.Put(eng)
					}
				}()
			} else if !s.cfg.Distributed {
				cs = s.chainPool.Get().(*chains.Sampler)
				if ctx != nil && ctx.Done() != nil {
					cs.Abort = &chainAbort
				}
				defer func() {
					cs.Abort = nil
					s.chainPool.Put(cs)
				}()
			}
			for {
				// Fail fast: once any chain errors, no worker claims
				// another chain — without this check the pool would drain
				// the entire remaining queue after the batch is already
				// doomed.
				if aborted.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				chainSeed := core.ChainSeed(seed, uint64(i))
				chainStart := time.Now()
				if eng != nil {
					st, err := eng.Run(s.init, chainSeed, s.rounds, batch.Samples[i])
					if err != nil {
						engDead = true
						errOnce.Do(func() { runErr = err })
						aborted.Store(true)
						return
					}
					shardStats[i] = st
					s.observeDraw(chainStart)
					continue
				}
				if s.cfg.Distributed {
					res, err := s.sampleWithSeed(ctx, chainSeed)
					if err != nil {
						errOnce.Do(func() { runErr = err })
						aborted.Store(true)
						return
					}
					copy(batch.Samples[i], res.Sample)
					chainStats[i] = res.Stats
					continue
				}
				cs.Reset(s.init, chainSeed)
				cs.Run(s.rounds)
				copy(batch.Samples[i], cs.X)
				s.observeDraw(chainStart)
			}
		}()
	}
	wg.Wait()
	if cerr := ctxErr(ctx); cerr != nil {
		// Cancellation wins over whatever secondary errors closing the
		// engines provoked — the caller asked for the abort it got.
		return nil, cerr
	}
	if runErr != nil {
		return nil, runErr
	}
	for _, st := range chainStats {
		batch.Stats.Messages += st.Messages
		batch.Stats.Bytes += st.Bytes
		if st.MaxMessageBytes > batch.Stats.MaxMessageBytes {
			batch.Stats.MaxMessageBytes = st.MaxMessageBytes
		}
		if st.Rounds > batch.Stats.Rounds {
			batch.Stats.Rounds = st.Rounds
		}
	}
	for _, st := range shardStats {
		batch.Shard.Add(st)
	}
	return batch, nil
}

// soaBatchable reports whether alg has an SoA batch kernel (the round
// shapes with marginal/propose/filter phases; the scan and chromatic
// baselines stay per-chain).
func soaBatchable(alg chains.Algorithm) bool {
	return alg == chains.Glauber || alg == chains.LubyGlauber || alg == chains.LocalMetropolis
}

// soaWidths are the block widths the auto-picker considers, widest first.
var soaWidths = [...]int{64, 32, 16, 8}

// batchWidth resolves the SoA lane width for a k-chain batch under a
// worker budget. explicit is Config.BatchWidth: 1 forces the per-chain
// path, w ≥ 2 pins the width (honored whenever the batch has at least w
// chains), 0 auto-picks the widest block that still cuts the batch into
// at least `workers` blocks — wider blocks amortize the CSR walk harder,
// but a batch with fewer blocks than workers would idle cores. Returns 0
// for "run per-chain".
func batchWidth(explicit, k, workers int) int {
	if explicit == 1 {
		return 0
	}
	if explicit >= 2 {
		if k >= explicit {
			return explicit
		}
		return 0
	}
	for _, w := range soaWidths {
		if k >= w && (k+w-1)/w >= workers {
			return w
		}
	}
	if k >= soaWidths[len(soaWidths)-1] {
		// Fewer blocks than workers at every width: take the narrowest
		// block rather than falling back to per-chain — lane amortization
		// beats perfect occupancy once a block fills.
		return soaWidths[len(soaWidths)-1]
	}
	return 0
}

// batchWorkers clamps the worker pool to the number of claimable work
// items — chains on the per-chain path, blocks on the SoA path — so a
// small batch never spins goroutines that could not claim work. Pinned
// by TestSampleNWorkerPoolClamped.
func batchWorkers(workers, items int) int {
	if workers > items {
		return items
	}
	return workers
}

// getSoABlock borrows a pooled SoA block at least `width` lanes wide,
// building one when the pool is empty or its block is too narrow (the
// undersized block is dropped for the collector — widths only grow).
func (s *Sampler) getSoABlock(width int) *chains.SoABlock {
	if b, _ := s.soaPool.Get().(*chains.SoABlock); b != nil && b.MaxWidth() >= width {
		return b
	}
	b := chains.NewSoABlock(s.m, s.cfg.Algorithm, chains.Options{DropRule3: s.cfg.DropRule3}, width)
	b.Obs = s.engineObserver()
	return b
}

// sampleNSoA runs a centralized batch through the SoA block engine: the
// k chains are cut into ceil(k/width) lockstep blocks, and the worker
// pool (clamped to the block count) claims blocks exactly as the
// per-chain path claims chains. The tail block, when k is not a multiple
// of width, runs with its natural lane count — lanes pack at the run
// width, so no dead lanes are computed. Chain i's lane is bit-identical
// to the per-chain path at ChainSeed(seed, i) (pinned at widths 8/16/33
// by TestSampleNSoABitIdentical).
func (s *Sampler) sampleNSoA(ctx context.Context, seed uint64, k, width, workers int, batch *Batch) (*Batch, error) {
	batch.SoAWidth = width
	blocks := (k + width - 1) / width
	workers = batchWorkers(workers, blocks)
	var (
		next       atomic.Int64
		wg         sync.WaitGroup
		chainAbort atomic.Bool
	)
	// One flag serves both the claim loop and the blocks' round
	// boundaries, mirroring the per-chain path (SoA batches cannot error:
	// the only exit besides completion is cancellation).
	stopWatch := ctxWatch(ctx, func() { chainAbort.Store(true) })
	defer stopWatch()
	cancelable := ctx != nil && ctx.Done() != nil
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blk := s.getSoABlock(width)
			if cancelable {
				blk.Abort = &chainAbort
			}
			defer func() {
				blk.Abort = nil
				s.soaPool.Put(blk)
			}()
			seeds := make([]uint64, width)
			for {
				if chainAbort.Load() {
					return
				}
				bi := int(next.Add(1)) - 1
				if bi >= blocks {
					return
				}
				lo := bi * width
				lanes := min(width, k-lo)
				for c := 0; c < lanes; c++ {
					seeds[c] = core.ChainSeed(seed, uint64(lo+c))
				}
				blockStart := time.Now()
				blk.Reset(s.init, seeds[:lanes])
				blk.Run(s.rounds)
				blk.Scatter(batch.Samples[lo : lo+lanes])
				s.observeDrawN(blockStart, lanes)
			}
		}()
	}
	wg.Wait()
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, cerr
	}
	return batch, nil
}

// observeDrawN meters `lanes` draws that completed together as one SoA
// block: the draw counter advances per chain, the latency histogram gets
// one observation — the block is the unit of work.
func (s *Sampler) observeDrawN(start time.Time, lanes int) {
	if s.mDraws == nil {
		return
	}
	s.mDraws.Add(int64(lanes))
	s.mDrawNS.Observe(time.Since(start).Nanoseconds())
}

// newDrawMetrics registers the sampler-level series under the given
// engine label ("mrf" | "csp"). A nil registry disables them all.
func newDrawMetrics(reg *obs.Registry, engine string) (draws *obs.Counter, drawNS *obs.Histogram, rounds *obs.RoundMetrics) {
	if reg == nil {
		return nil, nil, nil
	}
	draws = reg.Counter("locsample_draws_total", "completed sampler draws", "engine", engine)
	drawNS = reg.Histogram("locsample_draw_seconds", "end-to-end draw latency", 1e-9, "engine", engine)
	rounds = &obs.RoundMetrics{
		ComputeNS: reg.Histogram("locsample_round_compute_seconds", "per-round kernel time", 1e-9, "engine", engine),
		BarrierNS: reg.Histogram("locsample_round_barrier_seconds", "per-round barrier/exchange wait", 1e-9, "engine", engine),
		Flips:     reg.Counter("locsample_round_flips_total", "accepted per-round vertex updates", "engine", engine),
		Rounds:    reg.Counter("locsample_rounds_total", "chain rounds executed", "engine", engine),
	}
	return draws, drawNS, rounds
}
