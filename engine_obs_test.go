package locsample

import (
	"bytes"
	"strings"
	"testing"
)

// TestSampleTracedBitIdentical pins the tracing invariant at the API
// level: a traced draw returns the same configuration as an untraced
// one, centralized and sharded, and the trace actually carries round
// spans.
func TestSampleTracedBitIdentical(t *testing.T) {
	g := GridGraph(12, 12)
	m := NewColoring(g, 3*g.MaxDeg()+1)
	for _, shards := range []int{1, 3} {
		opts := []Option{WithSeed(7), WithRounds(20)}
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		s, err := NewSampler(m, opts...)
		if err != nil {
			t.Fatal(err)
		}
		bare, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		res, tr, err := s.SampleTraced()
		if err != nil {
			t.Fatal(err)
		}
		for v := range bare.Sample {
			if bare.Sample[v] != res.Sample[v] {
				t.Fatalf("shards=%d: traced draw diverged at vertex %d", shards, v)
			}
		}
		if tr.ID == "" || len(tr.ID) != 16 {
			t.Fatalf("shards=%d: bad trace ID %q", shards, tr.ID)
		}
		spans := tr.Spans()
		var compute, draw int
		lanes := map[int]bool{}
		for _, sp := range spans {
			switch sp.Name {
			case "round.compute":
				compute++
				lanes[sp.TID] = true
			case "draw":
				draw++
			}
		}
		if compute < shards*s.Rounds() {
			t.Fatalf("shards=%d: %d compute spans, want >= %d", shards, compute, shards*s.Rounds())
		}
		if len(lanes) != shards {
			t.Fatalf("shards=%d: spans on %d lanes", shards, len(lanes))
		}
		if draw != 1 {
			t.Fatalf("shards=%d: %d draw spans, want 1", shards, draw)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"traceEvents"`) {
			t.Fatal("Chrome export missing traceEvents")
		}
	}
}

// TestCSPSampleTraced is the CSP counterpart: traced draws match
// untraced ones and record one round span per round.
func TestCSPSampleTraced(t *testing.T) {
	g := GridGraph(8, 8)
	c := NewDominatingSet(g)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	s, err := NewCSPSampler(g, c, init, WithRounds(15), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	bare, _, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	traced, _, tr, err := s.SampleTraced()
	if err != nil {
		t.Fatal(err)
	}
	for v := range bare {
		if bare[v] != traced[v] {
			t.Fatalf("traced CSP draw diverged at vertex %d", v)
		}
	}
	var compute int
	for _, sp := range tr.Spans() {
		if sp.Name == "round.compute" {
			compute++
		}
	}
	if compute != s.Rounds() {
		t.Fatalf("%d compute spans, want %d", compute, s.Rounds())
	}
}

// TestWithMetricsPublishesDrawSeries checks that WithMetrics wires the
// sampler-level series — draws, latency, rounds — and that metered
// draws stay bit-identical to bare ones.
func TestWithMetricsPublishesDrawSeries(t *testing.T) {
	g := GridGraph(10, 10)
	m := NewColoring(g, 3*g.MaxDeg()+1)
	bareS, err := NewSampler(m, WithSeed(11), WithRounds(12))
	if err != nil {
		t.Fatal(err)
	}
	bare, err := bareS.Sample()
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetrics()
	s, err := NewSampler(m, WithSeed(11), WithRounds(12), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	for v := range bare.Sample {
		if bare.Sample[v] != res.Sample[v] {
			t.Fatalf("metered draw diverged at vertex %d", v)
		}
	}
	if _, err := s.SampleN(4); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`locsample_draws_total{engine="mrf"} 5`,
		`locsample_rounds_total{engine="mrf"} 60`,
		`locsample_draw_seconds_count{engine="mrf"} 5`,
		"# TYPE locsample_round_compute_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestWithMetricsCSP checks the CSP sampler publishes under the csp
// engine label, including the centralized observed round path.
func TestWithMetricsCSP(t *testing.T) {
	g := GridGraph(6, 6)
	c := NewDominatingSet(g)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	reg := NewMetrics()
	s, err := NewCSPSampler(g, c, init, WithRounds(9), WithSeed(5), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`locsample_draws_total{engine="csp"} 1`,
		`locsample_rounds_total{engine="csp"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
