package locsample_test

// The cross-process gate: draws placed on real lsharded worker processes
// over loopback TCP must be byte-for-byte the centralized draws of the
// same model and seed. This is the end-to-end form of the repo's keystone
// invariant — the transport layer, the control protocol, the worker's
// spec/plan reconstruction, and the coordinator's result reassembly all
// sit between the two sides being compared.

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"locsample"
)

var lshardedBin struct {
	once sync.Once
	path string
	err  error
}

// buildLsharded compiles cmd/lsharded once per test binary run.
func buildLsharded(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH; skipping cross-process gate")
	}
	lshardedBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "lsharded-bin-")
		if err != nil {
			lshardedBin.err = err
			return
		}
		bin := filepath.Join(dir, "lsharded")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/lsharded")
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			lshardedBin.err = errors.New("building lsharded: " + err.Error() + "\n" + string(out))
			return
		}
		lshardedBin.path = bin
	})
	if lshardedBin.err != nil {
		t.Fatal(lshardedBin.err)
	}
	return lshardedBin.path
}

// startWorkerProcs spawns n lsharded processes on ephemeral loopback
// ports and scrapes their bound addresses from stdout.
func startWorkerProcs(t *testing.T, n int) []string {
	addrs, _ := startWorkerProcsArgs(t, n)
	return addrs
}

// startWorkerProcsArgs is startWorkerProcs with extra lsharded flags
// and access to the spawned processes — the chaos suite signals them
// (SIGSTOP/SIGKILL) mid-draw.
func startWorkerProcsArgs(t *testing.T, n int, extra ...string) ([]string, []*exec.Cmd) {
	t.Helper()
	bin := buildLsharded(t)
	addrs := make([]string, n)
	cmds := make([]*exec.Cmd, n)
	for i := range addrs {
		args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extra...)
		cmd := exec.Command(bin, args...)
		cmds[i] = cmd
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				cmd.Process.Kill()
				<-done
			}
		})
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("worker %d: no listen line on stdout (err=%v)", i, sc.Err())
		}
		line := sc.Text()
		const prefix = "lsharded: listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("worker %d: unexpected stdout line %q", i, line)
		}
		addrs[i] = strings.TrimPrefix(line, prefix)
		go func() { // drain so the child never blocks on a full pipe
			for sc.Scan() {
			}
		}()
	}
	return addrs, cmds
}

// TestCrossProcessShardedBitIdentical is the MRF half of the gate: a
// grid coloring drawn across real worker processes at several shard
// counts, compared chain-for-chain against the centralized sampler.
func TestCrossProcessShardedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := locsample.GridGraph(9, 7)
	m := locsample.NewColoring(g, 3*g.MaxDeg())
	const rounds, seed, k = 20, 61, 3

	central, err := locsample.NewSampler(m,
		locsample.WithRounds(rounds), locsample.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := central.SampleN(k)
	if err != nil {
		t.Fatal(err)
	}

	fleet := startWorkerProcs(t, 3)
	for _, shards := range []int{2, 3, 5, 8} {
		addrs := fleet
		if shards < len(addrs) {
			addrs = addrs[:shards]
		}
		s, err := locsample.NewSampler(m,
			locsample.WithRounds(rounds), locsample.WithSeed(seed),
			locsample.WithShards(shards), locsample.WithRemoteWorkers(addrs...))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := s.SampleN(k)
		if err != nil {
			s.Close()
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			s.Close()
			t.Fatalf("shards=%d over %d processes: batch diverges from centralized", shards, len(addrs))
		}
		if len(addrs) > 1 && got.Shard.WireFrames == 0 {
			s.Close()
			t.Fatalf("shards=%d over %d processes: no frames crossed the wire", shards, len(addrs))
		}
		s.Close()
	}
}

// TestCrossProcessCSPBitIdentical is the CSP half of the gate: a
// dominating-set CSP across real worker processes, same contract.
func TestCrossProcessCSPBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := locsample.GridGraph(6, 6)
	c := locsample.NewDominatingSet(g)
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	const rounds, seed, k = 15, 23, 2

	central, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(rounds), locsample.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := central.SampleN(k)
	if err != nil {
		t.Fatal(err)
	}

	fleet := startWorkerProcs(t, 3)
	for _, shards := range []int{2, 3, 5, 8} {
		addrs := fleet
		if shards < len(addrs) {
			addrs = addrs[:shards]
		}
		s, err := locsample.NewCSPSampler(g, c, init,
			locsample.WithRounds(rounds), locsample.WithSeed(seed),
			locsample.WithShards(shards), locsample.WithRemoteWorkers(addrs...))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := s.SampleN(k)
		if err != nil {
			s.Close()
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			s.Close()
			t.Fatalf("shards=%d over %d processes: CSP batch diverges from centralized", shards, len(addrs))
		}
		s.Close()
	}
}
