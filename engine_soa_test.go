package locsample_test

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"locsample"
)

// TestSampleNSoABitIdentical pins the SoA batch engine's determinism
// contract at the API level: chain i of SampleN under WithBatchWidth(w)
// is bit-identical to Sample(WithSeed(ChainSeed(s, i))) at widths 8, 16,
// and 33 — 33 chains cut into tail blocks at 8 and 16, and one odd
// full-width block at 33 — for the coloring and Ising kernels (CI-gated
// via the bit-identity suite).
func TestSampleNSoABitIdentical(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	for _, tc := range []struct {
		name  string
		model *locsample.Model
		alg   locsample.Algorithm
	}{
		{"localmetropolis-coloring", locsample.NewColoring(g, 3*g.MaxDeg()), locsample.LocalMetropolis},
		{"localmetropolis-ising", locsample.NewIsing(g, 0.9, 0.4), locsample.LocalMetropolis},
		{"lubyglauber-coloring", locsample.NewColoring(g, 2*g.MaxDeg()+1), locsample.LubyGlauber},
		{"glauber-coloring", locsample.NewColoring(g, 3*g.MaxDeg()), locsample.Glauber},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const seed, k = 42, 33
			base := []locsample.Option{
				locsample.WithAlgorithm(tc.alg),
				locsample.WithRounds(30),
			}
			want := make([][]int, k)
			for i := range want {
				single, err := locsample.Sample(tc.model,
					append(base, locsample.WithSeed(locsample.ChainSeed(seed, i)))...)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = single.Sample
			}
			for _, width := range []int{8, 16, 33} {
				s, err := locsample.NewSampler(tc.model,
					append(base, locsample.WithSeed(seed), locsample.WithBatchWidth(width))...)
				if err != nil {
					t.Fatal(err)
				}
				batch, err := s.SampleN(k)
				if err != nil {
					t.Fatal(err)
				}
				if batch.SoAWidth != width {
					t.Fatalf("width=%d: batch ran at SoAWidth %d", width, batch.SoAWidth)
				}
				if !reflect.DeepEqual(batch.Samples, want) {
					t.Fatalf("width=%d: SoA batch diverges from derived-seed singles", width)
				}
			}
			// Auto width takes the SoA path for a 33-chain batch and stays
			// identical; width 1 forces the per-chain reference path.
			auto, err := locsample.NewSampler(tc.model, append(base, locsample.WithSeed(seed))...)
			if err != nil {
				t.Fatal(err)
			}
			ab, err := auto.SampleN(k)
			if err != nil {
				t.Fatal(err)
			}
			if ab.SoAWidth == 0 {
				t.Fatal("auto width did not take the SoA path for k=33")
			}
			if !reflect.DeepEqual(ab.Samples, want) {
				t.Fatal("auto-width SoA batch diverges from derived-seed singles")
			}
			aos, err := locsample.NewSampler(tc.model,
				append(base, locsample.WithSeed(seed), locsample.WithBatchWidth(1))...)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := aos.SampleN(k)
			if err != nil {
				t.Fatal(err)
			}
			if rb.SoAWidth != 0 {
				t.Fatalf("WithBatchWidth(1) still ran SoA at width %d", rb.SoAWidth)
			}
			if !reflect.DeepEqual(rb.Samples, want) {
				t.Fatal("per-chain reference batch diverges from derived-seed singles")
			}
		})
	}
}

// TestSampleCSPNSoABitIdentical is the CSP face of the same contract:
// dominating-set batch chains through the SoA engine at widths 8/16/33
// equal per-chain SampleCSP draws at the derived seeds.
func TestSampleCSPNSoABitIdentical(t *testing.T) {
	g, c, init := cspTestWorkload(t)
	const rounds, seed, k = 15, 9, 33
	want := make([][]int, k)
	for i := range want {
		out, _, err := locsample.SampleCSP(g, c, init, rounds, locsample.ChainSeed(seed, i), false)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	for _, width := range []int{8, 16, 33} {
		s, err := locsample.NewCSPSampler(g, c, init,
			locsample.WithRounds(rounds), locsample.WithSeed(seed), locsample.WithBatchWidth(width))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := s.SampleNFrom(seed, k)
		if err != nil {
			t.Fatal(err)
		}
		if batch.SoAWidth != width {
			t.Fatalf("width=%d: batch ran at SoAWidth %d", width, batch.SoAWidth)
		}
		if !reflect.DeepEqual(batch.Samples, want) {
			t.Fatalf("width=%d: SoA CSP batch diverges from derived-seed singles", width)
		}
		// The convenience form threads the width through its rebuilt config.
		samples, err := locsample.SampleCSPN(g, c, init, rounds, seed, k, 0,
			locsample.WithBatchWidth(width))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(samples, want) {
			t.Fatalf("width=%d: SampleCSPN SoA batch diverges", width)
		}
	}
}

// TestSampleNFromSoAConcurrent exercises the SoA path under concurrent
// SampleNFrom calls — the serving pattern — so the race detector sees the
// block pool, the claim loop, and the scatter writes under contention.
func TestSampleNFromSoAConcurrent(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	model := locsample.NewColoring(g, 3*g.MaxDeg())
	s, err := locsample.NewSampler(model,
		locsample.WithRounds(20), locsample.WithBatchWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	const callers, k = 4, 17
	ref, err := s.SampleNFrom(7, k)
	if err != nil {
		t.Fatal(err)
	}
	if ref.SoAWidth != 8 {
		t.Fatalf("reference batch ran at SoAWidth %d, want 8", ref.SoAWidth)
	}
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			batch, err := s.SampleNFrom(seed, k)
			if err != nil {
				errs <- err
				return
			}
			if seed == 7 && !reflect.DeepEqual(batch.Samples, ref.Samples) {
				t.Error("concurrent SoA batch diverges from sequential reference")
			}
		}(uint64(5 + c%2*2)) // seeds 5 and 7 interleaved
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSampleNWorkerPoolClamped pins the worker-pool sizing satellite: a
// batch that cuts into a single SoA block must not spin a
// GOMAXPROCS-sized pool. The run is observed via the process goroutine
// count while the draw is in flight.
func TestSampleNWorkerPoolClamped(t *testing.T) {
	g := locsample.GridGraph(48, 48)
	model := locsample.NewColoring(g, 3*g.MaxDeg())
	s, err := locsample.NewSampler(model,
		locsample.WithRounds(300),
		locsample.WithWorkers(8),
		locsample.WithBatchWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools so the measured run spawns only claim-loop workers.
	if _, err := s.SampleN(8); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := s.SampleN(8) // one block of 8 lanes -> one worker
		done <- err
	}()
	peak := base
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// base + launcher + 1 clamped worker, with slack for runtime
			// housekeeping; an unclamped pool would add 8.
			if peak > base+5 {
				t.Fatalf("goroutines peaked at %d over a base of %d; pool not clamped to the block count", peak, base)
			}
			return
		default:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}
